"""Pseudo-random holder structures: grids and share lattices.

The sender selects holders *pseudo-randomly* (paper §III): she draws random
targets in the id space and resolves each to a concrete live node.  Two
resolution modes are supported:

- **abstract** — holders are drawn directly from a given population
  sequence without an overlay.  The Monte-Carlo experiments use this (the
  paper's own evaluation works at this level too: it marks ``10000 * p``
  nodes malicious and samples holders among the 10,000).
- **overlay-backed** — holders are found by iterative DHT lookup of random
  targets (:func:`build_grid_on_overlay`), which the end-to-end protocol
  simulation uses.

All structures guarantee *node-disjointness across the whole structure*:
one physical node never appears twice, matching the paper's figures where
every ``H_{i,j}`` is distinct (and required for Eqs. 1-3's independence).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, List, Optional, Sequence, Set

from repro.util.rng import RandomSource
from repro.util.validation import check_positive_int


@dataclass(frozen=True)
class HolderGrid:
    """A ``k x l`` grid of distinct holders.

    ``rows[i][j]`` is holder ``H_{i+1, j+1}`` — the ``(j+1)``-th holder on
    the ``(i+1)``-th path.  The same structure serves both multipath
    schemes; only the *forwarding rule* differs (rows for node-disjoint,
    full column fan-out for node-joint), which the schemes own.
    """

    rows: tuple  # tuple of tuples of holder ids

    def __post_init__(self) -> None:
        if not self.rows or not self.rows[0]:
            raise ValueError("grid must have at least one row and one column")
        widths = {len(row) for row in self.rows}
        if len(widths) != 1:
            raise ValueError(f"ragged grid: row widths {sorted(widths)}")
        flat = [holder for row in self.rows for holder in row]
        if len(set(flat)) != len(flat):
            raise ValueError("grid holders must be distinct nodes")

    @property
    def replication(self) -> int:
        """``k`` — the number of paths."""
        return len(self.rows)

    @property
    def path_length(self) -> int:
        """``l`` — holders per path."""
        return len(self.rows[0])

    @property
    def node_count(self) -> int:
        return self.replication * self.path_length

    def row(self, index: int) -> Sequence[Hashable]:
        """Path ``index`` (1-based)."""
        return self.rows[index - 1]

    def column(self, index: int) -> List[Hashable]:
        """Column ``index`` (1-based): the holders replicating key ``K_index``."""
        return [row[index - 1] for row in self.rows]

    def columns(self) -> List[List[Hashable]]:
        return [self.column(j) for j in range(1, self.path_length + 1)]

    def all_holders(self) -> List[Hashable]:
        return [holder for row in self.rows for holder in row]

    def position_of(self, holder: Hashable) -> Optional[tuple]:
        """``(row, column)`` 1-based position, or None."""
        for i, row in enumerate(self.rows, start=1):
            for j, member in enumerate(row, start=1):
                if member == holder:
                    return (i, j)
        return None


@dataclass(frozen=True)
class ShareLattice:
    """The key-share routing structure (paper Fig. 5).

    ``n`` rows by ``l`` columns of distinct holders; every column ``j``'s
    layer key is split ``(m_j, n)`` and each row carries one share.  The
    per-column thresholds come from Algorithm 1 and may differ by column.
    """

    rows: tuple  # n rows of l holders each
    thresholds: tuple  # one threshold m_j per column, len == l

    def __post_init__(self) -> None:
        if not self.rows or not self.rows[0]:
            raise ValueError("lattice must have at least one row and one column")
        widths = {len(row) for row in self.rows}
        if len(widths) != 1:
            raise ValueError(f"ragged lattice: row widths {sorted(widths)}")
        if len(self.thresholds) != len(self.rows[0]):
            raise ValueError(
                f"need one threshold per column: "
                f"{len(self.thresholds)} thresholds, {len(self.rows[0])} columns"
            )
        for column_index, threshold in enumerate(self.thresholds, start=1):
            if not 1 <= threshold <= len(self.rows):
                raise ValueError(
                    f"column {column_index} threshold {threshold} outside "
                    f"[1, {len(self.rows)}]"
                )
        flat = [holder for row in self.rows for holder in row]
        if len(set(flat)) != len(flat):
            raise ValueError("lattice holders must be distinct nodes")

    @property
    def share_count(self) -> int:
        """``n`` — shares (rows) per column."""
        return len(self.rows)

    @property
    def path_length(self) -> int:
        """``l``."""
        return len(self.rows[0])

    @property
    def node_count(self) -> int:
        return self.share_count * self.path_length

    def threshold(self, column: int) -> int:
        """``m`` for column (1-based)."""
        return self.thresholds[column - 1]

    def row(self, index: int) -> Sequence[Hashable]:
        return self.rows[index - 1]

    def column(self, index: int) -> List[Hashable]:
        return [row[index - 1] for row in self.rows]

    def columns(self) -> List[List[Hashable]]:
        return [self.column(j) for j in range(1, self.path_length + 1)]

    def all_holders(self) -> List[Hashable]:
        return [holder for row in self.rows for holder in row]


def build_grid(
    population: Sequence[Hashable],
    replication: int,
    path_length: int,
    rng: RandomSource,
    exclude: Optional[Set[Hashable]] = None,
) -> HolderGrid:
    """Sample a ``replication x path_length`` grid from ``population``.

    Sampling is without replacement across the whole grid (node-disjoint).
    ``exclude`` removes e.g. the sender and receiver from candidacy.
    """
    check_positive_int(replication, "replication")
    check_positive_int(path_length, "path_length")
    candidates = _eligible(population, exclude)
    needed = replication * path_length
    if len(candidates) < needed:
        raise ValueError(
            f"population of {len(candidates)} eligible nodes cannot supply "
            f"{needed} distinct holders"
        )
    chosen = rng.sample(candidates, needed)
    rows = tuple(
        tuple(chosen[i * path_length : (i + 1) * path_length])
        for i in range(replication)
    )
    return HolderGrid(rows=rows)


def build_share_lattice(
    population: Sequence[Hashable],
    share_count: int,
    path_length: int,
    thresholds: Sequence[int],
    rng: RandomSource,
    exclude: Optional[Set[Hashable]] = None,
) -> ShareLattice:
    """Sample an ``n x l`` share lattice from ``population``."""
    check_positive_int(share_count, "share_count")
    check_positive_int(path_length, "path_length")
    candidates = _eligible(population, exclude)
    needed = share_count * path_length
    if len(candidates) < needed:
        raise ValueError(
            f"population of {len(candidates)} eligible nodes cannot supply "
            f"{needed} distinct holders"
        )
    chosen = rng.sample(candidates, needed)
    rows = tuple(
        tuple(chosen[i * path_length : (i + 1) * path_length])
        for i in range(share_count)
    )
    return ShareLattice(rows=rows, thresholds=tuple(thresholds))


def _eligible(
    population: Sequence[Hashable], exclude: Optional[Set[Hashable]]
) -> Sequence[Hashable]:
    if exclude:
        return [node for node in population if node not in exclude]
    # No copy: ``random.sample`` draws identically from any same-length
    # sequence, so a ``range`` population never needs materialising.
    return population


def build_grid_on_overlay(
    lookup_node,
    replication: int,
    path_length: int,
    rng: RandomSource,
    exclude: Optional[Set] = None,
) -> HolderGrid:
    """Resolve a grid of holders by iterative DHT lookups of random targets.

    ``lookup_node`` is any :class:`~repro.dht.kademlia.KademliaNode` the
    sender controls.  Each holder is the closest *online* node to a fresh
    random target id; duplicates (possible when targets land near each
    other) are re-drawn, preserving node-disjointness.
    """
    from repro.dht.node_id import NodeId

    check_positive_int(replication, "replication")
    check_positive_int(path_length, "path_length")
    taken: Set = set(exclude) if exclude else set()
    taken.add(lookup_node.node_id)
    flat: List = []
    attempts = 0
    needed = replication * path_length
    max_attempts = needed * 20 + 100
    while len(flat) < needed:
        attempts += 1
        if attempts > max_attempts:
            raise RuntimeError(
                f"could not resolve {needed} distinct online holders after "
                f"{attempts} lookups"
            )
        target = NodeId.random(rng)
        resolved = lookup_node.find_closest_online(target)
        if resolved is None or resolved in taken:
            continue
        taken.add(resolved)
        flat.append(resolved)
    rows = tuple(
        tuple(flat[i * path_length : (i + 1) * path_length])
        for i in range(replication)
    )
    return HolderGrid(rows=rows)
