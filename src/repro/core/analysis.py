"""Closed-form attack resilience (paper §III, Eqs. 1-3 and Lemma 1).

Notation (throughout): ``p`` — node malicious rate; ``k`` — replication
factor (number of paths); ``l`` — path length (holders per path).

- Centralized scheme: ``Rr = Rd = 1 - p``.
- Node-disjoint multipath (Eqs. 1 and 2)::

      Rr = 1 - (1 - (1-p)^k)^l
      Rd = 1 - (1 - (1-p)^l)^k

- Node-joint multipath (Eq. 3; Rr unchanged from Eq. 1)::

      Rd = (1 - p^k)^l

Lemma 1: for the node-joint scheme, ``Rr + Rd > 1`` whenever ``p < 0.5``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.validation import check_positive_int, check_probability


@dataclass(frozen=True)
class ResiliencePair:
    """A (release-ahead, drop) resilience pair for one configuration."""

    release: float
    drop: float

    @property
    def worst(self) -> float:
        """min(Rr, Rd) — the single number the evaluation plots as R."""
        return min(self.release, self.drop)

    @property
    def balanced(self) -> bool:
        return abs(self.release - self.drop) < 1e-9


def centralized_resilience(malicious_rate: float) -> ResiliencePair:
    """Both resiliences equal ``1 - p`` (paper §III-A)."""
    p = check_probability(malicious_rate, "malicious_rate")
    return ResiliencePair(release=1.0 - p, drop=1.0 - p)


def disjoint_release_resilience(
    malicious_rate: float, replication: int, path_length: int
) -> float:
    """Eq. 1: ``Rr = 1 - (1 - (1-p)^k)^l``.

    The adversary succeeds iff every column (holders sharing a layer key)
    contains at least one malicious holder.
    """
    p = check_probability(malicious_rate, "malicious_rate")
    k = check_positive_int(replication, "replication")
    l = check_positive_int(path_length, "path_length")
    column_captured = 1.0 - (1.0 - p) ** k
    return 1.0 - column_captured ** l


def disjoint_drop_resilience(
    malicious_rate: float, replication: int, path_length: int
) -> float:
    """Eq. 2: ``Rd = 1 - (1 - (1-p)^l)^k``.

    The adversary succeeds iff every path contains a malicious holder.
    """
    p = check_probability(malicious_rate, "malicious_rate")
    k = check_positive_int(replication, "replication")
    l = check_positive_int(path_length, "path_length")
    path_cut = 1.0 - (1.0 - p) ** l
    return 1.0 - path_cut ** k


def disjoint_resilience(
    malicious_rate: float, replication: int, path_length: int
) -> ResiliencePair:
    """Both Eq. 1 and Eq. 2 for one configuration."""
    return ResiliencePair(
        release=disjoint_release_resilience(malicious_rate, replication, path_length),
        drop=disjoint_drop_resilience(malicious_rate, replication, path_length),
    )


def joint_release_resilience(
    malicious_rate: float, replication: int, path_length: int
) -> float:
    """Node-joint Rr equals the node-disjoint Rr (Eq. 1): the capture
    condition (one malicious holder per column) is structural to the
    column-replicated keys and unchanged by the richer forwarding graph."""
    return disjoint_release_resilience(malicious_rate, replication, path_length)


def joint_drop_resilience(
    malicious_rate: float, replication: int, path_length: int
) -> float:
    """Eq. 3: ``Rd = (1 - p^k)^l``.

    With full column-to-column fan-out the package dies only when an entire
    column is malicious.
    """
    p = check_probability(malicious_rate, "malicious_rate")
    k = check_positive_int(replication, "replication")
    l = check_positive_int(path_length, "path_length")
    return (1.0 - p ** k) ** l


def joint_resilience(
    malicious_rate: float, replication: int, path_length: int
) -> ResiliencePair:
    """Eq. 1 and Eq. 3 for one configuration."""
    return ResiliencePair(
        release=joint_release_resilience(malicious_rate, replication, path_length),
        drop=joint_drop_resilience(malicious_rate, replication, path_length),
    )


def lemma1_holds(malicious_rate: float, replication: int, path_length: int) -> bool:
    """Check Lemma 1's inequality ``Rr + Rd > 1`` for the node-joint scheme.

    Guaranteed true for ``p < 0.5``; the property tests sweep this.
    """
    pair = joint_resilience(malicious_rate, replication, path_length)
    return pair.release + pair.drop > 1.0


def required_nodes(replication: int, path_length: int) -> int:
    """Grid cost in distinct DHT nodes (plotted as C in Fig. 6(b)/(d))."""
    check_positive_int(replication, "replication")
    check_positive_int(path_length, "path_length")
    return replication * path_length
