"""The Rr / Rd trade-off frontier (paper §III-C).

Lemma 1 guarantees ``Rr + Rd > 1`` for the node-joint scheme when
``p < 0.5``, and the paper notes the *tradeoff between Rr and Rd* "helps to
design a highly attack-resilient system".  This module makes that concrete:
for a fixed node budget it sweeps the achievable (Rr, Rd) pairs and
extracts the Pareto frontier, letting a sender bias the structure toward
whichever attack worries her more (e.g. a news embargo fears release-ahead;
an escrow fears drops).

Used by the ablation benches and the ``repro.cli plan --frontier`` command.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.core.planner import _resilience_grids
from repro.util.validation import check_positive_int, check_probability


@dataclass(frozen=True)
class FrontierPoint:
    """One Pareto-optimal (k, l) configuration."""

    replication: int
    path_length: int
    release_resilience: float
    drop_resilience: float

    @property
    def cost(self) -> int:
        return self.replication * self.path_length

    def satisfies(self, min_release: float, min_drop: float) -> bool:
        return (
            self.release_resilience >= min_release
            and self.drop_resilience >= min_drop
        )


def pareto_frontier(
    scheme: str,
    malicious_rate: float,
    node_budget: int,
    max_replication: int = 32,
    max_path_length: int = 256,
) -> List[FrontierPoint]:
    """All Pareto-optimal (Rr, Rd) configurations under the budget.

    A configuration is kept iff no other affordable configuration is at
    least as good on both axes and strictly better on one.  The result is
    sorted by increasing ``Rr`` (hence decreasing ``Rd``).
    """
    p = check_probability(malicious_rate, "malicious_rate")
    check_positive_int(node_budget, "node_budget")
    k_values = np.arange(1, min(max_replication, node_budget) + 1)
    l_values = np.arange(1, min(max_path_length, node_budget) + 1)
    release, drop = _resilience_grids(scheme, p, k_values, l_values)
    cost = k_values[:, None] * l_values[None, :]
    affordable = cost <= node_budget

    candidates = []
    for k_index in range(release.shape[0]):
        for l_index in range(release.shape[1]):
            if not affordable[k_index, l_index]:
                continue
            candidates.append(
                (
                    float(release[k_index, l_index]),
                    float(drop[k_index, l_index]),
                    int(k_values[k_index]),
                    int(l_values[l_index]),
                    int(cost[k_index, l_index]),
                )
            )
    # Sort by Rr descending, then sweep keeping strictly improving Rd —
    # the classic O(n log n) Pareto extraction; ties broken toward lower
    # cost so the frontier is also cost-minimal per point.
    candidates.sort(key=lambda c: (-c[0], -c[1], c[4]))
    frontier: List[FrontierPoint] = []
    best_drop = -1.0
    epsilon = 1e-12
    for rel, drp, k, l, _cost in candidates:
        if drp > best_drop + epsilon:
            best_drop = drp
            frontier.append(
                FrontierPoint(
                    replication=k,
                    path_length=l,
                    release_resilience=rel,
                    drop_resilience=drp,
                )
            )
    frontier.reverse()  # increasing Rr
    return frontier


def biased_configuration(
    scheme: str,
    malicious_rate: float,
    node_budget: int,
    release_weight: float = 0.5,
    **kwargs,
) -> FrontierPoint:
    """Pick the frontier point maximizing a weighted mix of Rr and Rd.

    ``release_weight = 1`` optimizes purely for release-ahead resilience
    (embargo use case); ``0`` purely for drop resilience (escrow use case);
    ``0.5`` reproduces the balanced planner's preference.
    """
    weight = check_probability(release_weight, "release_weight")
    frontier = pareto_frontier(scheme, malicious_rate, node_budget, **kwargs)
    if not frontier:
        raise RuntimeError("empty frontier — budget too small")
    return max(
        frontier,
        key=lambda point: weight * point.release_resilience
        + (1.0 - weight) * point.drop_resilience,
    )


def lemma1_gap(points: Sequence[FrontierPoint]) -> float:
    """The minimum of (Rr + Rd - 1) over a frontier.

    Lemma 1 says this is positive for the node-joint scheme at p < 0.5;
    the tests sweep it.
    """
    if not points:
        raise ValueError("empty frontier")
    return min(
        point.release_resilience + point.drop_resilience - 1.0 for point in points
    )
