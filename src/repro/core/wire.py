"""Minimal length-prefixed binary serialization.

Onion layers and protocol packages need a stable byte format so that layers
can nest and tests can assert on exact round-trips.  The format is
deliberately simple: big-endian fixed-width integers and length-prefixed
byte strings, written/read through :class:`WireWriter` / :class:`WireReader`.
"""

from __future__ import annotations

from typing import List


class WireError(ValueError):
    """Raised on malformed wire data (truncation, bad lengths)."""


class WireWriter:
    """Accumulates a serialized message."""

    def __init__(self) -> None:
        self._parts: List[bytes] = []

    def write_u8(self, value: int) -> "WireWriter":
        if not 0 <= value < 2 ** 8:
            raise WireError(f"u8 out of range: {value}")
        self._parts.append(value.to_bytes(1, "big"))
        return self

    def write_u32(self, value: int) -> "WireWriter":
        if not 0 <= value < 2 ** 32:
            raise WireError(f"u32 out of range: {value}")
        self._parts.append(value.to_bytes(4, "big"))
        return self

    def write_u64(self, value: int) -> "WireWriter":
        if not 0 <= value < 2 ** 64:
            raise WireError(f"u64 out of range: {value}")
        self._parts.append(value.to_bytes(8, "big"))
        return self

    def write_f64(self, value: float) -> "WireWriter":
        import struct

        self._parts.append(struct.pack(">d", value))
        return self

    def write_bytes(self, data: bytes) -> "WireWriter":
        """Length-prefixed byte string (u32 length)."""
        if not isinstance(data, (bytes, bytearray)):
            raise WireError(f"expected bytes, got {type(data).__name__}")
        self.write_u32(len(data))
        self._parts.append(bytes(data))
        return self

    def write_str(self, text: str) -> "WireWriter":
        return self.write_bytes(text.encode("utf-8"))

    def write_bytes_list(self, items: List[bytes]) -> "WireWriter":
        self.write_u32(len(items))
        for item in items:
            self.write_bytes(item)
        return self

    def getvalue(self) -> bytes:
        return b"".join(self._parts)


class WireReader:
    """Cursor-based reader over a serialized message."""

    def __init__(self, data: bytes) -> None:
        if not isinstance(data, (bytes, bytearray)):
            raise WireError(f"expected bytes, got {type(data).__name__}")
        self._data = bytes(data)
        self._offset = 0

    def _take(self, count: int) -> bytes:
        if self._offset + count > len(self._data):
            raise WireError(
                f"truncated message: need {count} bytes at offset {self._offset}, "
                f"have {len(self._data) - self._offset}"
            )
        chunk = self._data[self._offset : self._offset + count]
        self._offset += count
        return chunk

    def read_u8(self) -> int:
        return int.from_bytes(self._take(1), "big")

    def read_u32(self) -> int:
        return int.from_bytes(self._take(4), "big")

    def read_u64(self) -> int:
        return int.from_bytes(self._take(8), "big")

    def read_f64(self) -> float:
        import struct

        return struct.unpack(">d", self._take(8))[0]

    def read_bytes(self) -> bytes:
        length = self.read_u32()
        return self._take(length)

    def read_str(self) -> str:
        return self.read_bytes().decode("utf-8")

    def read_bytes_list(self) -> List[bytes]:
        count = self.read_u32()
        return [self.read_bytes() for _ in range(count)]

    @property
    def remaining(self) -> int:
        return len(self._data) - self._offset

    def read_rest(self) -> bytes:
        return self._take(self.remaining)

    def expect_end(self) -> None:
        if self.remaining:
            raise WireError(f"{self.remaining} trailing bytes after message")
