"""Holder runtime: the package transmission protocol (paper §III).

This module turns the schemes' abstract structures into an executable
protocol on the simulated DHT.  Every overlay node gets a
:class:`HolderService` installed as its ``Deliver`` handler; holders then:

1. receive a layer key (multipath schemes, at ``ts``) or accumulate Shamir
   shares until the column threshold is met (key-share routing);
2. peel their onion layer;
3. hold the remaining onion for the holding period (the layer's embedded
   ``forward_at``);
4. forward the onion — and, in the share scheme, the next column's shares —
   to the next hops;
5. terminal holders deliver the emerged secret to the receiver at ``tr``.

Addressing modes (see DESIGN.md §5): multipath holders are *concrete* node
ids (keys were pre-assigned to those exact nodes, so a dead node is a lost
hop), while key-share hops are *id-space targets* re-resolved by DHT lookup
at forwarding time — the re-resolution is what makes the share scheme
churn-resilient, because a dead target simply resolves to the node that
took over its id neighbourhood.

Malicious holders (per the installed :class:`~repro.adversary.population.
SybilPopulation`) leak everything they see into the
:class:`~repro.adversary.knowledge.CollusionPool`; in drop mode they also
refuse to forward.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.adversary.knowledge import CollusionPool, Observation
from repro.adversary.population import SybilPopulation
from repro.core.onion import OnionCore, OnionPeelError, peel_onion
from repro.core.packages import (
    CHANNEL_LAYER_KEY,
    CHANNEL_ONION,
    CHANNEL_SECRET,
    CHANNEL_SHARE,
    LayerKeyPackage,
    OnionPackage,
    SecretPackage,
    SharePackage,
    parse_package,
)
from repro.crypto.shamir import Share, combine_shares
from repro.dht.kademlia import KademliaNode
from repro.dht.node_id import NodeId
from repro.dht.rpc import Deliver
from repro.sim.trace import TraceRecorder

ATTACK_NONE = "none"
ATTACK_RELEASE_AHEAD = "release-ahead"
ATTACK_DROP = "drop"

# Row tag 0 marks multipath onions, which fan out to every listed next hop;
# rows >= 1 mark key-share lattice onions, which follow their own row.
MULTIPATH_ROW = 0


@dataclass
class ProtocolContext:
    """Shared state for one protocol deployment on an overlay."""

    network: object  # SimulatedNetwork
    population: Optional[SybilPopulation] = None
    pool: CollusionPool = field(default_factory=CollusionPool)
    attack_mode: str = ATTACK_NONE
    trace: TraceRecorder = field(default_factory=lambda: TraceRecorder(enabled=False))
    resolve_targets: bool = False  # key-share mode: re-resolve hop ids

    def is_malicious(self, node_id: NodeId) -> bool:
        if self.population is None:
            return False
        return self.population.is_malicious(node_id)


class HolderService:
    """Per-node protocol logic, installed as the node's Deliver handler."""

    def __init__(self, node: KademliaNode, context: ProtocolContext) -> None:
        self.node = node
        self.context = context
        self._layer_keys: Dict[Tuple[bytes, int], bytes] = {}  # (key_id, column)
        self._shares: Dict[Tuple[bytes, int, int], Dict[int, Share]] = {}
        self._pending: Dict[Tuple[bytes, int], bytes] = {}  # (key_id, row) -> blob
        self._processed: Set[Tuple[bytes, int]] = set()
        node.deliver_handler = self._on_deliver

    # -- delivery entry point ------------------------------------------------

    def _on_deliver(self, sender: NodeId, channel: str, payload: bytes) -> None:
        package = parse_package(channel, payload)
        malicious = self.context.is_malicious(self.node.node_id)
        now = self.context.network.loop.clock.now

        if malicious:
            self._leak(package, now)
            if self.context.attack_mode == ATTACK_DROP and channel != CHANNEL_LAYER_KEY:
                # A dropping holder swallows onions and shares.  It still
                # accepts layer keys: refusing those would not help it, and
                # the leak above already recorded them.
                self.context.trace.record(
                    now, "attack", f"{self.node.node_id} dropped {channel} package"
                )
                return

        if channel == CHANNEL_LAYER_KEY:
            self._handle_layer_key(package)
        elif channel == CHANNEL_SHARE:
            self._handle_share(package)
        elif channel == CHANNEL_ONION:
            self._handle_onion(package)
        elif channel == CHANNEL_SECRET:
            # Holders are not receivers; a secret landing here is a protocol
            # error surfaced loudly rather than silently ignored.
            raise RuntimeError(
                f"secret package delivered to non-receiver node {self.node.node_id}"
            )

    # -- handlers -------------------------------------------------------------

    def _handle_layer_key(self, package: LayerKeyPackage) -> None:
        self._layer_keys[(package.key_id, package.column)] = package.key
        self._try_process_all(package.key_id)

    def _handle_share(self, package: SharePackage) -> None:
        bucket = self._shares.setdefault(
            (package.key_id, package.row, package.column), {}
        )
        bucket[package.share.index] = package.share
        self._try_process_all(package.key_id)

    def _handle_onion(self, package: OnionPackage) -> None:
        key = (package.key_id, package.row)
        if key in self._processed or key in self._pending:
            return  # duplicate copy from the joint fan-in
        self._pending[key] = package.blob
        self._try_process_all(package.key_id)

    # -- processing -------------------------------------------------------------

    def _try_process_all(self, key_id: bytes) -> None:
        for (pending_key_id, row) in list(self._pending.keys()):
            if pending_key_id == key_id:
                self._try_process(key_id, row)

    def _try_process(self, key_id: bytes, row: int) -> None:
        blob = self._pending.get((key_id, row))
        if blob is None:
            return
        layer = core = None
        for layer_key in self._candidate_keys(key_id, row):
            try:
                layer, core = peel_onion(layer_key, blob)
                break
            except OnionPeelError:
                # A key for a different column or row cannot decrypt this
                # layer; try the next candidate.
                continue
        if layer is None:
            return
        del self._pending[(key_id, row)]
        self._processed.add((key_id, row))
        now = self.context.network.loop.clock.now
        self.context.trace.record(
            now,
            "holder",
            f"{self.node.node_id} peeled column {layer.column} (row {row})",
            column=layer.column,
        )
        if self.context.is_malicious(self.node.node_id):
            self.context.pool.deposit(
                Observation(
                    time=now,
                    holder=self.node.node_id,
                    kind="onion",
                    column=layer.column,
                    payload=layer.remaining,
                )
            )
            # A malicious holder also learns every share its onion layer
            # instructs it to forward (shares of the *next* column's keys),
            # one per destination row — §III-D's capture surface.
            for row_index, share in enumerate(layer.forward_shares, start=1):
                self.context.pool.deposit_share(
                    now, self.node.node_id, layer.column + 1, share, row=row_index
                )
        if core is not None:
            self._schedule_secret(key_id, layer, core)
        else:
            self._schedule_forward(key_id, row, layer)

    def _candidate_keys(self, key_id: bytes, row: int):
        """Yield directly stored layer keys, then share-reconstructed ones."""
        for (stored_key_id, _column), key in self._layer_keys.items():
            if stored_key_id == key_id:
                yield key
        for (share_key_id, share_row, _column), bucket in self._shares.items():
            if share_key_id != key_id or share_row != row:
                continue
            if not bucket:
                continue
            threshold = next(iter(bucket.values())).threshold
            if len(bucket) >= threshold:
                yield combine_shares(list(bucket.values())[:threshold])

    # -- forwarding ---------------------------------------------------------------

    def _schedule_forward(self, key_id: bytes, row: int, layer) -> None:
        context = self.context
        network = context.network
        forward_at = max(layer.forward_at, network.loop.clock.now)
        shares = layer.forward_shares
        hops = layer.next_hops
        if shares and len(shares) != len(hops):
            raise RuntimeError(
                f"onion layer lists {len(hops)} hops but {len(shares)} shares"
            )

        def forward() -> None:
            if not network.is_online(self.node.node_id):
                context.trace.record(
                    network.loop.clock.now,
                    "holder",
                    f"{self.node.node_id} dead/offline at forward time; "
                    "package lost",
                )
                return
            for index, hop_bytes in enumerate(hops):
                target = self._resolve(NodeId.from_bytes(hop_bytes))
                if target is None:
                    context.trace.record(
                        network.loop.clock.now,
                        "holder",
                        f"{self.node.node_id} found no live node for hop {index}",
                    )
                    continue
                if shares:
                    # Key-share routing: the onion follows its own row; the
                    # shares go to every next-column holder.
                    share_package = SharePackage(
                        key_id=key_id,
                        row=index + 1,
                        column=layer.column + 1,
                        share=shares[index],
                    )
                    self._deliver(target, share_package)
                    if index + 1 == row:
                        onion = OnionPackage(
                            key_id=key_id, row=row, blob=layer.remaining
                        )
                        self._deliver(target, onion)
                else:
                    onion = OnionPackage(key_id=key_id, row=row, blob=layer.remaining)
                    self._deliver(target, onion)

        network.loop.call_at(
            forward_at, forward, label=f"forward-{self.node.node_id}"
        )

    def _schedule_secret(self, key_id: bytes, layer, core: OnionCore) -> None:
        if not core.receiver_id:
            return  # auxiliary share-lattice row: dummy core, nothing to emit
        context = self.context
        network = context.network
        now = network.loop.clock.now
        if context.is_malicious(self.node.node_id):
            context.pool.deposit(
                Observation(
                    time=now,
                    holder=self.node.node_id,
                    kind="secret_key",
                    payload=core.secret,
                )
            )
            if context.attack_mode == ATTACK_DROP:
                return
        receiver = NodeId.from_bytes(core.receiver_id)
        release_at = max(layer.forward_at, now)

        def deliver_secret() -> None:
            if not network.is_online(self.node.node_id):
                context.trace.record(
                    network.loop.clock.now,
                    "holder",
                    f"terminal holder {self.node.node_id} dead/offline at "
                    "release time; copy lost",
                )
                return
            package = SecretPackage(key_id=key_id, secret=core.secret)
            self._deliver(receiver, package)

        network.loop.call_at(
            release_at, deliver_secret, label=f"release-{self.node.node_id}"
        )

    # -- plumbing --------------------------------------------------------------------

    def _resolve(self, target: NodeId) -> Optional[NodeId]:
        """Concrete id, or closest live node in target-resolution mode."""
        if not self.context.resolve_targets:
            return target
        if self.context.network.get_node(target) is not None and (
            self.context.network.is_online(target)
        ):
            return target
        return self.node.find_closest_online(target)

    def _deliver(self, target: NodeId, package) -> None:
        network = self.context.network
        request = Deliver(
            sender=self.node.node_id,
            channel=package.channel,
            payload=package.to_bytes(),
        )
        network.send_at(network.loop.clock.now, request, target)

    # -- adversary bookkeeping ----------------------------------------------------------

    def _leak(self, package, now: float) -> None:
        pool = self.context.pool
        holder = self.node.node_id
        if isinstance(package, LayerKeyPackage):
            pool.deposit(
                Observation(
                    time=now,
                    holder=holder,
                    kind="layer_key",
                    column=package.column,
                    payload=package.key,
                )
            )
        elif isinstance(package, SharePackage):
            pool.deposit_share(
                now, holder, package.column, package.share, row=package.row
            )
        elif isinstance(package, OnionPackage):
            # Column unknown until peeled; record under column None and let
            # the peel-time deposit carry the column.
            pool.deposit(
                Observation(
                    time=now, holder=holder, kind="onion", payload=package.blob
                )
            )
        elif isinstance(package, SecretPackage):
            pool.deposit(
                Observation(
                    time=now, holder=holder, kind="secret_key", payload=package.secret
                )
            )


def install_holders(overlay, context: ProtocolContext) -> List[HolderService]:
    """Install a HolderService on every overlay node; returns the services."""
    services = []
    for node in overlay.nodes.values():
        services.append(HolderService(node, context))
    return services


def attempt_early_release(
    pool: CollusionPool, path_length: int
) -> Optional[bytes]:
    """Try to reconstruct the secret from pooled adversary knowledge.

    Mirrors what a real adversary would do: if the secret itself leaked,
    done; otherwise take every captured onion blob and strip layers with
    captured column keys until a core falls out.  Returns the secret bytes
    or None — integration tests compare this against the closed-form
    success predicates.
    """
    direct = pool.secret_key()
    if direct is not None:
        return direct
    blobs = [obs.payload for obs in pool.observations("onion") if obs.payload]
    keys = {
        column: pool.known_layer_key(column)
        for column in range(1, path_length + 1)
    }
    for blob in blobs:
        current = blob
        for _ in range(path_length):
            peeled = False
            for column in range(1, path_length + 1):
                key = keys.get(column)
                if key is None:
                    continue
                try:
                    layer, core = peel_onion(key, current)
                except OnionPeelError:
                    continue
                if core is not None:
                    return core.secret
                current = layer.remaining
                peeled = True
                break
            if not peeled:
                break
    return None
