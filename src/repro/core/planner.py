"""Choosing ``(k, l)`` for a target resilience (Fig. 6 methodology).

The paper plots, per malicious rate ``p``, the attack resilience
``R = Rr = Rd`` *and* the number of nodes the configuration consumes
(Fig. 6(b)/(d)).  The cost curves start near 1 and rise steeply with ``p``,
which implies the sender picks the **cheapest** configuration that meets a
target resilience, falling back to the best achievable configuration when
the node budget ``N`` cannot meet the target.  That is exactly what
:func:`plan_configuration` does:

1. grid-search ``k`` and ``l`` under ``k * l <= N``;
2. among configurations with ``min(Rr, Rd) >= target`` pick the smallest
   ``k * l`` (ties: higher worst-case resilience);
3. if none qualifies, pick the configuration maximizing ``min(Rr, Rd)``
   (ties: cheaper).

The search is vectorised with numpy; the 64 x 2048 grid per ``p`` evaluates
in a few milliseconds.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.analysis import ResiliencePair
from repro.util.validation import check_positive_int, check_probability

DEFAULT_TARGET = 0.999
DEFAULT_MAX_REPLICATION = 64
DEFAULT_MAX_PATH_LENGTH = 2048


@dataclass(frozen=True)
class PlannedConfiguration:
    """A planner decision for one (scheme, p, N) point."""

    scheme: str
    malicious_rate: float
    replication: int
    path_length: int
    release_resilience: float
    drop_resilience: float
    node_budget: int
    target: float
    meets_target: bool

    @property
    def cost(self) -> int:
        """Distinct DHT nodes consumed (the C axis of Fig. 6(b)/(d))."""
        return self.replication * self.path_length

    @property
    def worst_resilience(self) -> float:
        """min(Rr, Rd) — the R axis of Fig. 6(a)/(c)."""
        return min(self.release_resilience, self.drop_resilience)

    @property
    def resilience_pair(self) -> ResiliencePair:
        return ResiliencePair(
            release=self.release_resilience, drop=self.drop_resilience
        )


def _resilience_grids(scheme: str, p: float, k_values, l_values):
    """Vectorised Rr / Rd over the (k, l) grid for one scheme."""
    k_col = k_values[:, None].astype(float)
    l_row = l_values[None, :].astype(float)
    honest = 1.0 - p
    # Rr is shared by both multipath schemes (Eq. 1).
    column_captured = 1.0 - honest ** k_col
    with np.errstate(divide="ignore"):
        release = 1.0 - column_captured ** l_row
    if scheme == "disjoint":
        path_cut = 1.0 - honest ** l_row
        drop = 1.0 - path_cut ** k_col
    elif scheme == "joint":
        drop = (1.0 - p ** k_col) ** l_row
    else:
        raise ValueError(f"unknown multipath scheme {scheme!r}")
    return release, drop


def plan_configuration(
    scheme: str,
    malicious_rate: float,
    node_budget: int,
    target: float = DEFAULT_TARGET,
    max_replication: int = DEFAULT_MAX_REPLICATION,
    max_path_length: int = DEFAULT_MAX_PATH_LENGTH,
) -> PlannedConfiguration:
    """Plan ``(k, l)`` for one scheme at one malicious rate.

    ``scheme`` is ``"central"`` (alias ``"centralized"``), ``"disjoint"``
    or ``"joint"``.  The centralized scheme has no parameters — it always
    returns ``k = l = 1``.
    """
    p = check_probability(malicious_rate, "malicious_rate")
    check_positive_int(node_budget, "node_budget")
    target = check_probability(target, "target")

    if scheme in ("central", "centralized"):
        baseline = 1.0 - p
        return PlannedConfiguration(
            scheme="central",
            malicious_rate=p,
            replication=1,
            path_length=1,
            release_resilience=baseline,
            drop_resilience=baseline,
            node_budget=node_budget,
            target=target,
            meets_target=baseline >= target,
        )

    k_values = np.arange(1, min(max_replication, node_budget) + 1)
    l_values = np.arange(1, min(max_path_length, node_budget) + 1)
    release, drop = _resilience_grids(scheme, p, k_values, l_values)
    cost = k_values[:, None] * l_values[None, :]
    affordable = cost <= node_budget
    worst = np.minimum(release, drop)
    worst = np.where(affordable, worst, -1.0)

    feasible = worst >= target
    if feasible.any():
        # Cheapest feasible configuration; ties broken by higher resilience.
        candidate_cost = np.where(feasible, cost, np.iinfo(np.int64).max)
        best_cost = candidate_cost.min()
        tied = (candidate_cost == best_cost)
        tie_worst = np.where(tied, worst, -1.0)
        flat_index = int(np.argmax(tie_worst))
        meets = True
    else:
        # No configuration reaches the target: maximize worst-case
        # resilience, breaking ties toward cheaper configurations.
        best_worst = worst.max()
        tied = np.isclose(worst, best_worst) & affordable
        tie_cost = np.where(tied, cost, np.iinfo(np.int64).max)
        flat_index = int(np.argmin(tie_cost))
        meets = False

    k_index, l_index = np.unravel_index(flat_index, worst.shape)
    k = int(k_values[k_index])
    l = int(l_values[l_index])
    return PlannedConfiguration(
        scheme=scheme,
        malicious_rate=p,
        replication=k,
        path_length=l,
        release_resilience=float(release[k_index, l_index]),
        drop_resilience=float(drop[k_index, l_index]),
        node_budget=node_budget,
        target=target,
        meets_target=meets,
    )
