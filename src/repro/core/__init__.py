"""The paper's contribution: self-emerging key routing in a DHT.

Layout:

- :mod:`repro.core.timeline` — emerging-period arithmetic (``ts``, ``tr``,
  ``T``, holding period ``th``, period boundaries).
- :mod:`repro.core.paths` — pseudo-random holder grid / share lattice
  construction.
- :mod:`repro.core.onion` — layered onion packages (build and peel).
- :mod:`repro.core.wire` — the byte-level serialization the onion and the
  protocol messages share.
- :mod:`repro.core.analysis` — the closed-form resilience equations
  (Eqs. 1-3 and Lemma 1).
- :mod:`repro.core.planner` — choosing ``(k, l)`` for a target resilience.
- :mod:`repro.core.schemes` — the four schemes (centralized, node-disjoint,
  node-joint, key-share routing with Algorithm 1).
- :mod:`repro.core.protocol` — holder runtime for end-to-end simulation on
  the DHT substrate.
- :mod:`repro.core.sender` / :mod:`repro.core.receiver` — Alice and Bob.
"""

from repro.core.analysis import (
    centralized_resilience,
    disjoint_drop_resilience,
    disjoint_release_resilience,
    joint_drop_resilience,
    joint_release_resilience,
)
from repro.core.onion import OnionLayer, build_onion, peel_onion
from repro.core.paths import HolderGrid, ShareLattice, build_grid, build_share_lattice
from repro.core.planner import PlannedConfiguration, plan_configuration
from repro.core.receiver import DataReceiver
from repro.core.schemes import (
    CentralizedScheme,
    KeyShareScheme,
    NodeDisjointScheme,
    NodeJointScheme,
)
from repro.core.sender import DataSender, SendResult
from repro.core.timeline import ReleaseTimeline

__all__ = [
    "ReleaseTimeline",
    "HolderGrid",
    "ShareLattice",
    "build_grid",
    "build_share_lattice",
    "OnionLayer",
    "build_onion",
    "peel_onion",
    "centralized_resilience",
    "disjoint_release_resilience",
    "disjoint_drop_resilience",
    "joint_release_resilience",
    "joint_drop_resilience",
    "PlannedConfiguration",
    "plan_configuration",
    "CentralizedScheme",
    "NodeDisjointScheme",
    "NodeJointScheme",
    "KeyShareScheme",
    "DataSender",
    "SendResult",
    "DataReceiver",
]
