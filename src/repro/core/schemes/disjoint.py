"""Node-disjoint multipath routing (paper §III-B).

``k`` replicated, node-disjoint onion paths of length ``l``.  Layer keys
``K_1..K_l`` are pre-assigned to the holders at the start time: every
column-``j`` holder (one per path) stores the same ``K_j``.  The onion
forces the adversary to capture one holder in *every* column for early
release (Eq. 1); the ``k`` replicated paths force it to cut every path for
a drop (Eq. 2).
"""

from __future__ import annotations

from typing import Hashable, Sequence

from repro.adversary.drop import DropAttack
from repro.adversary.population import SybilPopulation
from repro.adversary.release_ahead import ReleaseAheadAttack
from repro.core.analysis import ResiliencePair, disjoint_resilience
from repro.core.paths import HolderGrid, build_grid
from repro.core.schemes.base import AttackOutcome, Scheme
from repro.util.rng import RandomSource
from repro.util.validation import check_positive_int


class NodeDisjointScheme(Scheme):
    """The ``k``-path, length-``l`` node-disjoint onion routing scheme."""

    name = "disjoint"

    def __init__(self, replication: int, path_length: int) -> None:
        self.replication = check_positive_int(replication, "replication")
        self.path_length = check_positive_int(path_length, "path_length")

    def resilience(self, malicious_rate: float) -> ResiliencePair:
        return disjoint_resilience(
            malicious_rate, self.replication, self.path_length
        )

    @property
    def node_cost(self) -> int:
        return self.replication * self.path_length

    def sample_structure(
        self, population: Sequence[Hashable], rng: RandomSource
    ) -> HolderGrid:
        return build_grid(population, self.replication, self.path_length, rng)

    def evaluate_attacks(
        self, structure: HolderGrid, population: SybilPopulation
    ) -> AttackOutcome:
        release = ReleaseAheadAttack(population).evaluate_grid(structure.columns())
        drop = DropAttack(population).evaluate_disjoint(structure.rows)
        return AttackOutcome(
            release_resisted=not release.succeeded,
            drop_resisted=not drop.succeeded,
        )

    def __repr__(self) -> str:
        return (
            f"NodeDisjointScheme(k={self.replication}, l={self.path_length})"
        )
