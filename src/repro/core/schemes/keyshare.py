"""Key share routing (paper §III-D) and Algorithm 1.

Instead of pre-assigning onion-layer keys at the start time — which forces
holders to *store* keys for up to the whole emerging period and lets churn
repairs leak them — the sender splits every layer key into ``n`` Shamir
shares and routes the shares alongside the onions.  A layer key exists at
its column only for one holding period, and the ``(m, n)`` threshold
absorbs shares lost to churn.

Algorithm 1 picks ``m`` per column by balancing the two attack-success
tails:

- release-ahead at a column succeeds when the adversary pools ``m`` of the
  ``n`` shares, i.e. ``P[Bin(n, p) >= m]``;
- drop at a column succeeds when fewer than ``m`` honest shares survive
  among the ``n - d`` that churn left alive, i.e.
  ``P[Bin(n - d, p) >= n - d - m + 1]``.

``m`` minimizes the absolute difference of those two tails, the per-column
success rates accumulate across columns, and the final aggregation over the
``k`` onion paths yields (Rr, Rd).  We implement the pseudocode faithfully,
with one documented disambiguation: the paper's final loop reads ``l``
per-column entries while the column loop pushes ``l - 1``, and the paper
initializes ``pr = pd = p`` before the loop — so the recorded lists are
seeded with that column-1 value (see DESIGN.md §5).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Hashable, List, Optional, Sequence, Tuple

import numpy as np
from scipy import stats

from repro.adversary.population import SybilPopulation
from repro.core.analysis import ResiliencePair
from repro.core.paths import ShareLattice, build_share_lattice
from repro.core.schemes.base import AttackOutcome, Scheme
from repro.util.rng import RandomSource
from repro.util.validation import check_positive, check_positive_int, check_probability


@dataclass(frozen=True)
class SharePlan:
    """Everything Algorithm 1 decides for one (k, l, N, T, λ, p) input."""

    replication: int
    path_length: int
    node_budget: int
    shares_per_column: int  # n
    dead_share_estimate: int  # d
    death_probability: float  # p_dead for one holding period
    malicious_rate: float
    thresholds: Tuple[int, ...]  # m for columns 2..l (len == l - 1)
    release_success_by_column: Tuple[float, ...]  # cumulative pr, len == l
    drop_success_by_column: Tuple[float, ...]  # cumulative pd, len == l
    release_tail_by_column: Tuple[float, ...]  # per-column P[Bin(n,p) >= m]
    drop_tail_by_column: Tuple[float, ...]  # per-column drop tail
    release_resilience: float  # Rr
    drop_resilience: float  # Rd

    @property
    def worst_resilience(self) -> float:
        return min(self.release_resilience, self.drop_resilience)

    def lattice_thresholds(self) -> Tuple[int, ...]:
        """Per-column m for all ``l`` columns (column 1 needs no recovery:
        its keys are handed over directly, modelled as threshold 1)."""
        return (1,) + self.thresholds


def _release_tails(n: int, p: float) -> np.ndarray:
    """``P[Bin(n, p) >= m]`` for every ``m`` in 1..n (index m-1)."""
    return stats.binom.sf(np.arange(0, n), n, p)


def _drop_tails(n: int, d: int, p: float) -> np.ndarray:
    """``P[Bin(n-d, p) >= n-d-m+1]`` for every ``m`` in 1..n (index m-1).

    Thresholds above ``n - d`` have probability 0 (cannot have more
    malicious than alive) and thresholds below 1 have probability 1.
    """
    alive = n - d
    thresholds = alive - np.arange(1, n + 1) + 1  # n-d-m+1 for m = 1..n
    tails = np.empty(n, dtype=float)
    impossible = thresholds > alive  # never true here but kept for clarity
    certain = thresholds <= 0
    regular = ~certain & ~impossible
    tails[certain] = 1.0
    tails[impossible] = 0.0
    tails[regular] = stats.binom.sf(thresholds[regular] - 1, alive, p)
    return tails


def algorithm1(
    replication: int,
    path_length: int,
    node_budget: int,
    emerging_time: float,
    mean_lifetime: float,
    malicious_rate: float,
) -> SharePlan:
    """Paper Algorithm 1: choose (m, n) per column and compute (Rr, Rd).

    Parameters mirror the paper's input line: ``k`` and ``l`` come from the
    node-joint planner, ``N`` is the number of nodes available for path
    construction, ``T`` the emerging time, ``λ`` the mean node lifetime and
    ``p`` the node malicious rate.
    """
    k = check_positive_int(replication, "replication")
    l = check_positive_int(path_length, "path_length", minimum=2)
    check_positive_int(node_budget, "node_budget")
    check_positive(emerging_time, "emerging_time")
    check_positive(mean_lifetime, "mean_lifetime")
    p = check_probability(malicious_rate, "malicious_rate")

    n = node_budget // l  # line 1
    if n < 1:
        raise ValueError(
            f"node budget {node_budget} cannot give every one of {l} columns a share"
        )
    holding = emerging_time / l
    p_dead = 1.0 - math.exp(-holding / mean_lifetime)  # line 2
    d = math.floor(p_dead * n)  # line 3

    release_tails = _release_tails(n, p)
    drop_tails = _drop_tails(n, d, p)

    pr = p  # line 4
    pd = p
    release_by_column: List[float] = [pr]  # seeded with column 1 (line 4-5)
    drop_by_column: List[float] = [pd]
    release_tail_by_column: List[float] = [p]  # column 1 contributes p itself
    drop_tail_by_column: List[float] = [p]
    thresholds: List[int] = []

    for _column in range(2, l + 1):  # lines 7-13
        difference = np.abs(release_tails - drop_tails)
        m_index = int(np.argmin(difference))  # line 8
        m = m_index + 1
        column_release = float(release_tails[m_index])
        column_drop = float(drop_tails[m_index])
        pr = 1.0 - (1.0 - pr) * (1.0 - column_release)  # line 9
        pd = 1.0 - (1.0 - pd) * (1.0 - column_drop)  # lines 10-11
        thresholds.append(m)
        release_by_column.append(pr)
        drop_by_column.append(pd)
        release_tail_by_column.append(column_release)
        drop_tail_by_column.append(column_drop)

    release_failure = 1.0  # lines 14-17
    drop_resilience = 1.0
    for column_release, column_drop in zip(release_by_column, drop_by_column):
        release_failure *= 1.0 - (1.0 - column_release) ** k
        drop_resilience *= 1.0 - column_drop ** k
    release_resilience = 1.0 - release_failure  # line 18

    return SharePlan(
        replication=k,
        path_length=l,
        node_budget=node_budget,
        shares_per_column=n,
        dead_share_estimate=d,
        death_probability=p_dead,
        malicious_rate=p,
        thresholds=tuple(thresholds),
        release_success_by_column=tuple(release_by_column),
        drop_success_by_column=tuple(drop_by_column),
        release_tail_by_column=tuple(release_tail_by_column),
        drop_tail_by_column=tuple(drop_tail_by_column),
        release_resilience=release_resilience,
        drop_resilience=drop_resilience,
    )


def cumulative_success_rates(
    plan: SharePlan, malicious_rate: Optional[float] = None
) -> Tuple[Tuple[float, ...], Tuple[float, ...]]:
    """Per-column cumulative (release, drop) success rates for a plan.

    Re-evaluates Algorithm 1's lines 9-11 with the plan's chosen
    thresholds, optionally against an *actual* malicious rate different
    from the one the plan was balanced for (the planning-floor case in the
    churn experiments).  With ``malicious_rate=None`` this reproduces the
    plan's stored ``release/drop_success_by_column`` exactly.
    """
    p = (
        plan.malicious_rate
        if malicious_rate is None
        else check_probability(malicious_rate, "malicious_rate")
    )
    n = plan.shares_per_column
    d = plan.dead_share_estimate
    release_tails = _release_tails(n, p)
    drop_tails = _drop_tails(n, d, p)
    pr = pd = p
    release_by_column = [pr]
    drop_by_column = [pd]
    for m in plan.thresholds:
        column_release = float(release_tails[m - 1])
        column_drop = float(drop_tails[m - 1])
        pr = 1.0 - (1.0 - pr) * (1.0 - column_release)
        pd = 1.0 - (1.0 - pd) * (1.0 - column_drop)
        release_by_column.append(pr)
        drop_by_column.append(pd)
    return tuple(release_by_column), tuple(drop_by_column)


DEFAULT_SHARE_PATH_CAP = 32


def plan_share_scheme(
    malicious_rate: float,
    node_budget: int,
    emerging_time: float,
    mean_lifetime: float,
    max_path_length: int = DEFAULT_SHARE_PATH_CAP,
) -> SharePlan:
    """End-to-end parameter selection for the key-share scheme.

    Per the paper, ``k`` and ``l`` are "determined by the node-joint
    multipath routing scheme" — we run the node-joint planner, with the
    path length capped (long onion paths starve the share columns: with
    ``n = N / l`` shares per column, an uncapped planner at high ``p``
    would drive ``n`` below the threshold noise floor).  Algorithm 1 then
    picks the per-column ``(m, n)``.
    """
    from repro.core.planner import plan_configuration

    check_positive_int(node_budget, "node_budget")
    cap = min(max_path_length, max(2, node_budget // 4))
    configuration = plan_configuration(
        "joint", malicious_rate, node_budget, max_path_length=cap
    )
    path_length = max(2, min(configuration.path_length, node_budget // 2))
    return algorithm1(
        configuration.replication,
        path_length,
        node_budget,
        emerging_time,
        mean_lifetime,
        malicious_rate,
    )


class KeyShareScheme(Scheme):
    """The key-share routing scheme, parameterised by Algorithm 1's inputs."""

    name = "share"

    def __init__(
        self,
        replication: int,
        path_length: int,
        node_budget: int,
        emerging_time: float,
        mean_lifetime: float,
        lattice_rows: int = 0,
    ) -> None:
        """``lattice_rows`` bounds the *sampled* lattice's row count for
        structure-level Monte Carlo; 0 means use Algorithm 1's full ``n``
        (which can be the entire network — the paper's cost axis)."""
        self.replication = check_positive_int(replication, "replication")
        self.path_length = check_positive_int(path_length, "path_length", minimum=2)
        self.node_budget = check_positive_int(node_budget, "node_budget")
        self.emerging_time = check_positive(emerging_time, "emerging_time")
        self.mean_lifetime = check_positive(mean_lifetime, "mean_lifetime")
        self.lattice_rows = lattice_rows

    def plan(self, malicious_rate: float) -> SharePlan:
        """Run Algorithm 1 for this configuration at one malicious rate."""
        return algorithm1(
            self.replication,
            self.path_length,
            self.node_budget,
            self.emerging_time,
            self.mean_lifetime,
            malicious_rate,
        )

    def resilience(self, malicious_rate: float) -> ResiliencePair:
        plan = self.plan(malicious_rate)
        return ResiliencePair(
            release=plan.release_resilience, drop=plan.drop_resilience
        )

    @property
    def node_cost(self) -> int:
        rows = self.lattice_rows or (self.node_budget // self.path_length)
        return rows * self.path_length

    def sample_structure(
        self, population: Sequence[Hashable], rng: RandomSource
    ) -> ShareLattice:
        plan = self.plan(0.0)  # thresholds for sampling don't depend on p...
        # ...but the balanced m does; re-plan at evaluation time instead.
        rows = self.lattice_rows or plan.shares_per_column
        thresholds = [1] + [max(1, min(rows, m)) for m in plan.thresholds]
        return build_share_lattice(
            population, rows, self.path_length, thresholds, rng
        )

    def evaluate_attacks(
        self, structure: ShareLattice, population: SybilPopulation
    ) -> AttackOutcome:
        """Static attack outcome under the telescoping semantics.

        Release-ahead: the adversary wins if at any column ``j >= 2`` it
        controls at least ``m_j`` of the *carriers* (column ``j - 1``
        holders) — with ``m_j`` captured shares of every column-``j`` key
        it strips all remaining layers of its captured row onions at once.
        Drop: it wins if at any column fewer than ``m_j`` carriers are
        honest (no churn in the static variant; the epoch model adds dead
        carriers).
        """
        columns = structure.columns()
        release_won = False
        drop_won = False
        for column_index in range(2, structure.path_length + 1):
            carriers = columns[column_index - 2]
            threshold = structure.threshold(column_index)
            malicious = sum(
                1 for holder in carriers if population.is_malicious(holder)
            )
            if malicious >= threshold:
                release_won = True
            if len(carriers) - malicious < threshold:
                drop_won = True
        return AttackOutcome(
            release_resisted=not release_won, drop_resisted=not drop_won
        )

    def __repr__(self) -> str:
        return (
            f"KeyShareScheme(k={self.replication}, l={self.path_length}, "
            f"N={self.node_budget})"
        )
