"""Node-joint multipath routing (paper §III-C).

Same ``k x l`` holder grid and key pre-assignment as the node-disjoint
scheme, but every column-``j`` holder forwards the onion to *every* column
``j + 1`` holder, multiplying the effective path count to ``k^l`` without
extra nodes.  Release-ahead resilience is unchanged (Eq. 1); drop now
requires owning a whole column (Eq. 3), and Lemma 1 guarantees
``Rr + Rd > 1`` for ``p < 0.5``.
"""

from __future__ import annotations

from typing import Hashable, Sequence

from repro.adversary.drop import DropAttack
from repro.adversary.population import SybilPopulation
from repro.adversary.release_ahead import ReleaseAheadAttack
from repro.core.analysis import ResiliencePair, joint_resilience
from repro.core.paths import HolderGrid, build_grid
from repro.core.schemes.base import AttackOutcome, Scheme
from repro.util.rng import RandomSource
from repro.util.validation import check_positive_int


class NodeJointScheme(Scheme):
    """The ``k x l`` node-joint (full column fan-out) routing scheme."""

    name = "joint"

    def __init__(self, replication: int, path_length: int) -> None:
        self.replication = check_positive_int(replication, "replication")
        self.path_length = check_positive_int(path_length, "path_length")

    def resilience(self, malicious_rate: float) -> ResiliencePair:
        return joint_resilience(malicious_rate, self.replication, self.path_length)

    @property
    def node_cost(self) -> int:
        return self.replication * self.path_length

    def sample_structure(
        self, population: Sequence[Hashable], rng: RandomSource
    ) -> HolderGrid:
        return build_grid(population, self.replication, self.path_length, rng)

    def evaluate_attacks(
        self, structure: HolderGrid, population: SybilPopulation
    ) -> AttackOutcome:
        columns = structure.columns()
        release = ReleaseAheadAttack(population).evaluate_grid(columns)
        drop = DropAttack(population).evaluate_joint(columns)
        return AttackOutcome(
            release_resisted=not release.succeeded,
            drop_resisted=not drop.succeeded,
        )

    def __repr__(self) -> str:
        return f"NodeJointScheme(k={self.replication}, l={self.path_length})"
