"""The centralized scheme (paper §III-A): one node holds the key for all of T.

The baseline in every figure.  Both attacks reduce to "is that one node
malicious" — ``Rr = Rd = 1 - p`` — and churn reduces ``Rd`` further because
a dead holder loses the key with nobody to repair from.
"""

from __future__ import annotations

from typing import Hashable, Sequence

from repro.adversary.population import SybilPopulation
from repro.core.analysis import ResiliencePair, centralized_resilience
from repro.core.schemes.base import AttackOutcome, Scheme
from repro.util.rng import RandomSource


class CentralizedScheme(Scheme):
    """Store the secret key on a single pseudo-randomly chosen holder."""

    name = "central"

    def resilience(self, malicious_rate: float) -> ResiliencePair:
        return centralized_resilience(malicious_rate)

    @property
    def node_cost(self) -> int:
        return 1

    def sample_structure(
        self, population: Sequence[Hashable], rng: RandomSource
    ) -> Hashable:
        """The structure is just the one chosen holder."""
        if not population:
            raise ValueError("population must be non-empty")
        return rng.choice(population)

    def evaluate_attacks(
        self, structure: Hashable, population: SybilPopulation
    ) -> AttackOutcome:
        malicious = population.is_malicious(structure)
        return AttackOutcome(
            release_resisted=not malicious, drop_resisted=not malicious
        )
