"""The four self-emerging key routing schemes (paper §III).

Every scheme exposes the same surface:

- ``name`` — the label the paper's figures use;
- ``resilience(p)`` — closed-form (or Algorithm-1) no-churn resilience;
- ``sample_structure(population, rng)`` — draw the holder structure the
  sender would build;
- ``evaluate_attacks(structure, population)`` — static attack outcome for
  one sampled structure (the Monte-Carlo inner loop).

The churn-aware Monte Carlo lives in :mod:`repro.experiments.churn_model`
because it is shared machinery across schemes.
"""

from repro.core.schemes.base import AttackOutcome, Scheme
from repro.core.schemes.centralized import CentralizedScheme
from repro.core.schemes.disjoint import NodeDisjointScheme
from repro.core.schemes.joint import NodeJointScheme
from repro.core.schemes.keyshare import (
    KeyShareScheme,
    SharePlan,
    algorithm1,
    plan_share_scheme,
)

__all__ = [
    "Scheme",
    "AttackOutcome",
    "CentralizedScheme",
    "NodeDisjointScheme",
    "NodeJointScheme",
    "KeyShareScheme",
    "SharePlan",
    "algorithm1",
    "plan_share_scheme",
]
