"""Common scheme interface."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Sequence

from repro.adversary.population import SybilPopulation
from repro.core.analysis import ResiliencePair
from repro.util.rng import RandomSource


@dataclass(frozen=True)
class AttackOutcome:
    """Result of evaluating both attacks against one sampled structure.

    ``release_resisted`` — the adversary could *not* restore the secret key
    at the start time (counts toward ``Rr``).
    ``drop_resisted`` — the adversary could *not* prevent release at ``tr``
    (counts toward ``Rd``).
    """

    release_resisted: bool
    drop_resisted: bool


class Scheme:
    """Base class: a parameterised self-emerging key routing scheme."""

    name: str = "abstract"

    def resilience(self, malicious_rate: float) -> ResiliencePair:
        """Closed-form (Rr, Rd) without churn."""
        raise NotImplementedError

    @property
    def node_cost(self) -> int:
        """Distinct holders the structure consumes."""
        raise NotImplementedError

    def sample_structure(
        self, population: Sequence[Hashable], rng: RandomSource
    ):
        """Draw the holder structure the sender would construct."""
        raise NotImplementedError

    def evaluate_attacks(
        self, structure, population: SybilPopulation
    ) -> AttackOutcome:
        """Static (no-churn) attack evaluation for one structure."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}(cost={self.node_cost})"
