"""Protocol-level package formats.

Everything the entities exchange over the DHT's ``Deliver`` RPC is one of
these four packages, each with a stable wire encoding and a channel name:

- :class:`OnionPackage` (channel ``"onion"``) — an onion blob in transit;
- :class:`LayerKeyPackage` (channel ``"layer-key"``) — a pre-assigned
  onion-layer key (multipath schemes, sent at ``ts``);
- :class:`SharePackage` (channel ``"share"``) — one Shamir share of a
  column key (key-share routing);
- :class:`SecretPackage` (channel ``"secret"``) — the emerged secret key,
  handed to the receiver at ``tr``.

``key_id`` identifies one self-emerging key instance so a holder can serve
many instances concurrently.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.onion import deserialize_share, serialize_share
from repro.core.wire import WireReader, WireWriter
from repro.crypto.shamir import Share

CHANNEL_ONION = "onion"
CHANNEL_LAYER_KEY = "layer-key"
CHANNEL_SHARE = "share"
CHANNEL_SECRET = "secret"


@dataclass(frozen=True)
class OnionPackage:
    """An onion blob for one key instance, tagged with its row."""

    key_id: bytes
    row: int
    blob: bytes

    channel = CHANNEL_ONION

    def to_bytes(self) -> bytes:
        writer = WireWriter()
        writer.write_bytes(self.key_id)
        writer.write_u32(self.row)
        writer.write_bytes(self.blob)
        return writer.getvalue()

    @classmethod
    def from_bytes(cls, data: bytes) -> "OnionPackage":
        reader = WireReader(data)
        key_id = reader.read_bytes()
        row = reader.read_u32()
        blob = reader.read_bytes()
        reader.expect_end()
        return cls(key_id=key_id, row=row, blob=blob)


@dataclass(frozen=True)
class LayerKeyPackage:
    """A pre-assigned layer key for one holder (multipath schemes)."""

    key_id: bytes
    column: int
    key: bytes

    channel = CHANNEL_LAYER_KEY

    def to_bytes(self) -> bytes:
        writer = WireWriter()
        writer.write_bytes(self.key_id)
        writer.write_u32(self.column)
        writer.write_bytes(self.key)
        return writer.getvalue()

    @classmethod
    def from_bytes(cls, data: bytes) -> "LayerKeyPackage":
        reader = WireReader(data)
        key_id = reader.read_bytes()
        column = reader.read_u32()
        key = reader.read_bytes()
        reader.expect_end()
        return cls(key_id=key_id, column=column, key=key)


@dataclass(frozen=True)
class SharePackage:
    """One Shamir share of the key for (key instance, row, column)."""

    key_id: bytes
    row: int
    column: int
    share: Share

    channel = CHANNEL_SHARE

    def to_bytes(self) -> bytes:
        writer = WireWriter()
        writer.write_bytes(self.key_id)
        writer.write_u32(self.row)
        writer.write_u32(self.column)
        writer.write_bytes(serialize_share(self.share))
        return writer.getvalue()

    @classmethod
    def from_bytes(cls, data: bytes) -> "SharePackage":
        reader = WireReader(data)
        key_id = reader.read_bytes()
        row = reader.read_u32()
        column = reader.read_u32()
        share = deserialize_share(reader.read_bytes())
        reader.expect_end()
        return cls(key_id=key_id, row=row, column=column, share=share)


@dataclass(frozen=True)
class SecretPackage:
    """The emerged secret key, delivered to the receiver at ``tr``."""

    key_id: bytes
    secret: bytes

    channel = CHANNEL_SECRET

    def to_bytes(self) -> bytes:
        writer = WireWriter()
        writer.write_bytes(self.key_id)
        writer.write_bytes(self.secret)
        return writer.getvalue()

    @classmethod
    def from_bytes(cls, data: bytes) -> "SecretPackage":
        reader = WireReader(data)
        key_id = reader.read_bytes()
        secret = reader.read_bytes()
        reader.expect_end()
        return cls(key_id=key_id, secret=secret)


_PARSERS = {
    CHANNEL_ONION: OnionPackage.from_bytes,
    CHANNEL_LAYER_KEY: LayerKeyPackage.from_bytes,
    CHANNEL_SHARE: SharePackage.from_bytes,
    CHANNEL_SECRET: SecretPackage.from_bytes,
}


def parse_package(channel: str, payload: bytes):
    """Decode a delivered payload by channel name."""
    parser = _PARSERS.get(channel)
    if parser is None:
        raise ValueError(f"unknown protocol channel {channel!r}")
    return parser(payload)
