"""The data receiver (Bob, paper §II-A).

Bob owns a DHT node whose id the sender bakes into the onion core.  At the
release time the terminal holders deliver the secret key to that id; Bob
then pulls the ciphertext from the cloud and decrypts.  Before ``tr``
nothing addressed to him exists anywhere in the network.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.cloud.storage import CloudStore
from repro.crypto.cipher import decrypt
from repro.core.packages import CHANNEL_SECRET, SecretPackage, parse_package
from repro.dht.kademlia import KademliaNode
from repro.dht.node_id import NodeId


@dataclass
class ReceivedKey:
    """One emerged secret key, with arrival bookkeeping."""

    key_id: bytes
    secret: bytes
    first_arrival: float
    copies: int = 1


class DataReceiver:
    """Bob: collects emerged secret keys and decrypts cloud ciphertexts."""

    def __init__(self, node: KademliaNode, name: str = "bob") -> None:
        self.node = node
        self.name = name
        self._received: Dict[bytes, ReceivedKey] = {}
        node.deliver_handler = self._on_deliver

    @property
    def node_id(self) -> NodeId:
        return self.node.node_id

    def _on_deliver(self, sender: NodeId, channel: str, payload: bytes) -> None:
        if channel != CHANNEL_SECRET:
            return  # receivers ignore protocol traffic not addressed to them
        package = parse_package(channel, payload)
        assert isinstance(package, SecretPackage)
        now = self.node.network.loop.clock.now
        existing = self._received.get(package.key_id)
        if existing is None:
            self._received[package.key_id] = ReceivedKey(
                key_id=package.key_id,
                secret=package.secret,
                first_arrival=now,
            )
        else:
            existing.copies += 1
            if package.secret != existing.secret:
                raise RuntimeError(
                    "terminal holders delivered conflicting secrets for one key id"
                )

    # -- queries ---------------------------------------------------------

    def has_key(self, key_id: bytes) -> bool:
        return key_id in self._received

    def received(self, key_id: bytes) -> Optional[ReceivedKey]:
        return self._received.get(key_id)

    def all_received(self) -> List[ReceivedKey]:
        return list(self._received.values())

    def release_time_of(self, key_id: bytes) -> Optional[float]:
        """When the key first emerged at the receiver, or None."""
        record = self._received.get(key_id)
        return record.first_arrival if record else None

    # -- end-to-end decryption --------------------------------------------

    def decrypt_from_cloud(
        self, cloud: CloudStore, blob_id: str, key_id: bytes
    ) -> bytes:
        """Fetch the ciphertext and decrypt with the emerged key.

        Raises ``KeyError`` when the key has not emerged yet — i.e. before
        ``tr`` the receiver *cannot* read the message, which integration
        tests assert.
        """
        record = self._received.get(key_id)
        if record is None:
            raise KeyError(
                f"secret key {key_id.hex()[:16]} has not emerged yet"
            )
        ciphertext = cloud.download(blob_id, principal=self.name)
        return decrypt(record.secret, ciphertext)
