"""Layered onion packages (paper §III-B, after Reed/Syverson/Goldschlag).

The sender wraps the secret key in ``l`` encryption layers.  Layer ``j`` is
encrypted under the column key ``K_j`` and its plaintext carries:

- the ids of the next column's holders (where to forward),
- optionally the Shamir shares the holder must forward alongside the onion
  (key-share routing scheme only),
- the remaining onion.

Peeling the innermost layer yields the *core*: the secret key material plus
the receiver's id.  A type byte distinguishes layer from core so a holder
knows whether it is a terminal holder without any out-of-band signal —
exactly the information flow of the paper, where terminal holders learn
they are last because they find the key.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.crypto.cipher import AuthenticationError, SymmetricCipher
from repro.crypto.shamir import Share
from repro.core.wire import WireError, WireReader, WireWriter
from repro.util.rng import RandomSource

_TYPE_LAYER = 0
_TYPE_CORE = 1


@dataclass(frozen=True)
class OnionLayer:
    """Decrypted contents of one onion layer.

    ``forward_at`` is the absolute virtual time at which the holder must
    hand the remaining onion to the next hops — the end of its holding
    period ``th``.  Embedding the schedule in the (authenticated) layer is
    how the sender controls timing with no further involvement after
    ``ts``, exactly the paper's hands-off requirement.
    """

    column: int
    next_hops: Tuple[bytes, ...]
    forward_shares: Tuple[Share, ...] = ()
    remaining: bytes = b""
    forward_at: float = 0.0

    @property
    def is_terminal(self) -> bool:
        """True when ``remaining`` is the core (checked by the peeler)."""
        return not self.next_hops


@dataclass(frozen=True)
class OnionCore:
    """The innermost payload: the secret key and who may receive it."""

    secret: bytes
    receiver_id: bytes


def serialize_share(share: Share) -> bytes:
    """Stable byte encoding of a Shamir share."""
    writer = WireWriter()
    writer.write_u8(share.index)
    writer.write_u8(share.threshold)
    writer.write_bytes(share.payload)
    return writer.getvalue()


def deserialize_share(data: bytes) -> Share:
    reader = WireReader(data)
    index = reader.read_u8()
    threshold = reader.read_u8()
    payload = reader.read_bytes()
    reader.expect_end()
    return Share(index=index, payload=payload, threshold=threshold)


def _serialize_core(core: OnionCore) -> bytes:
    writer = WireWriter()
    writer.write_u8(_TYPE_CORE)
    writer.write_bytes(core.secret)
    writer.write_bytes(core.receiver_id)
    return writer.getvalue()


def _serialize_layer_body(
    column: int,
    next_hops: Sequence[bytes],
    forward_shares: Sequence[Share],
    remaining: bytes,
    forward_at: float,
) -> bytes:
    writer = WireWriter()
    writer.write_u8(_TYPE_LAYER)
    writer.write_u32(column)
    writer.write_f64(forward_at)
    writer.write_bytes_list(list(next_hops))
    writer.write_bytes_list([serialize_share(share) for share in forward_shares])
    writer.write_bytes(remaining)
    return writer.getvalue()


def build_onion(
    layer_keys: Sequence[bytes],
    hop_ids: Sequence[Sequence[bytes]],
    core: OnionCore,
    forward_shares: Optional[Sequence[Sequence[Share]]] = None,
    forward_times: Optional[Sequence[float]] = None,
    rng: Optional[RandomSource] = None,
) -> bytes:
    """Construct the full onion.

    Parameters
    ----------
    layer_keys:
        ``[K_1, ..., K_l]`` — column keys, outermost first.
    hop_ids:
        ``hop_ids[j-1]`` lists the ids layer ``j`` reveals as next hops,
        i.e. the column ``j + 1`` holders; the last entry must be empty
        (the terminal layer reveals the core instead).
    core:
        Secret key material and receiver id.
    forward_shares:
        Optional; ``forward_shares[j-1]`` are the shares of ``K_{j+1}``
        that layer ``j`` instructs its holder to pass along (key-share
        routing).  The last entry must be empty.
    forward_times:
        Optional absolute forwarding instants per layer (defaults to 0.0,
        which protocol-less callers such as the crypto tests use).
    """
    length = len(layer_keys)
    if length == 0:
        raise ValueError("onion needs at least one layer")
    if len(hop_ids) != length:
        raise ValueError(
            f"got {length} layer keys but {len(hop_ids)} hop lists"
        )
    if hop_ids[-1]:
        raise ValueError("the terminal layer must have no next hops")
    if forward_shares is None:
        forward_shares = [[] for _ in range(length)]
    if len(forward_shares) != length:
        raise ValueError(
            f"got {length} layer keys but {len(forward_shares)} share lists"
        )
    if forward_shares[-1]:
        raise ValueError("the terminal layer must have no forward shares")
    if forward_times is None:
        forward_times = [0.0] * length
    if len(forward_times) != length:
        raise ValueError(
            f"got {length} layer keys but {len(forward_times)} forward times"
        )

    blob = _serialize_core(core)
    for column in range(length, 0, -1):
        body = _serialize_layer_body(
            column=column,
            next_hops=hop_ids[column - 1],
            forward_shares=forward_shares[column - 1],
            remaining=blob,
            forward_at=forward_times[column - 1],
        )
        cipher = SymmetricCipher(layer_keys[column - 1], rng=rng)
        blob = cipher.encrypt(body)
    return blob


class OnionPeelError(Exception):
    """Raised when a layer fails to decrypt or parse."""


def peel_onion(key: bytes, blob: bytes) -> Tuple[OnionLayer, Optional[OnionCore]]:
    """Strip one layer with ``key``.

    Returns ``(layer, core)`` where ``core`` is non-None iff the *next*
    level is the core, i.e. the caller is a terminal holder.  A wrong key
    (or tampering) raises :class:`OnionPeelError` — authenticated
    encryption means a holder can never mistake garbage for a layer.
    """
    cipher = SymmetricCipher(key)
    try:
        body = cipher.decrypt(blob)
    except (AuthenticationError, ValueError) as exc:
        raise OnionPeelError(f"layer decryption failed: {exc}") from exc
    try:
        reader = WireReader(body)
        type_byte = reader.read_u8()
        if type_byte != _TYPE_LAYER:
            raise WireError(f"expected layer type byte, got {type_byte}")
        column = reader.read_u32()
        forward_at = reader.read_f64()
        next_hops = tuple(reader.read_bytes_list())
        shares = tuple(
            deserialize_share(encoded) for encoded in reader.read_bytes_list()
        )
        remaining = reader.read_bytes()
        reader.expect_end()
    except WireError as exc:
        raise OnionPeelError(f"layer parse failed: {exc}") from exc

    core = _try_parse_core(remaining)
    layer = OnionLayer(
        column=column,
        next_hops=next_hops,
        forward_shares=shares,
        remaining=remaining,
        forward_at=forward_at,
    )
    return layer, core


def _try_parse_core(data: bytes) -> Optional[OnionCore]:
    """Parse ``data`` as a core if (and only if) it is one.

    Inner layers are ciphertext blobs, not wire messages, so parsing can
    only succeed for the genuine plaintext core the terminal layer holds.
    """
    try:
        reader = WireReader(data)
        if reader.read_u8() != _TYPE_CORE:
            return None
        secret = reader.read_bytes()
        receiver_id = reader.read_bytes()
        reader.expect_end()
        return OnionCore(secret=secret, receiver_id=receiver_id)
    except WireError:
        return None


def layer_count(blob_size: int, payload_size: int, overhead: int) -> int:
    """Rough number of layers a blob of ``blob_size`` could contain.

    Size accounting helper used by the cost benchmarks: each layer adds the
    cipher overhead plus its header.  Not used for correctness anywhere.
    """
    if overhead <= 0:
        raise ValueError("overhead must be positive")
    return max(0, (blob_size - payload_size) // overhead)
