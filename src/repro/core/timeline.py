"""Emerging-period arithmetic.

The sender wants the secret key hidden from the start time ``ts`` until the
release time ``tr``; the emerging period is ``T = tr - ts``.  A path of
length ``l`` divides ``T`` into ``l`` equal holding periods ``th = T / l``
(paper §III-B): the onion sits at column ``j`` during
``[ts + (j-1)*th, ts + j*th)`` and the terminal holders hand the key to the
receiver at exactly ``tr``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.util.validation import check_positive, check_positive_int


@dataclass(frozen=True)
class ReleaseTimeline:
    """Immutable timing plan for one self-emerging key."""

    start_time: float
    release_time: float
    path_length: int

    def __post_init__(self) -> None:
        check_positive(self.start_time, "start_time", allow_zero=True)
        check_positive_int(self.path_length, "path_length")
        if self.release_time <= self.start_time:
            raise ValueError(
                f"release_time ({self.release_time}) must be after "
                f"start_time ({self.start_time})"
            )

    @property
    def emerging_period(self) -> float:
        """``T = tr - ts``."""
        return self.release_time - self.start_time

    @property
    def holding_period(self) -> float:
        """``th = T / l``."""
        return self.emerging_period / self.path_length

    def forward_time(self, column: int) -> float:
        """When column ``column`` (1-based) forwards to the next column.

        Column ``l`` "forwards" to the receiver at exactly ``tr``.
        """
        self._check_column(column)
        return self.start_time + column * self.holding_period

    def arrival_time(self, column: int) -> float:
        """When the onion arrives at column ``column``."""
        self._check_column(column)
        return self.start_time + (column - 1) * self.holding_period

    def column_at(self, timestamp: float) -> int:
        """Which column holds the onion at ``timestamp``.

        Clamped to ``[1, l]``; before ``ts`` the package is still with the
        sender, which callers must handle themselves.
        """
        if timestamp < self.start_time:
            raise ValueError(f"timestamp {timestamp} precedes start time")
        if timestamp >= self.release_time:
            return self.path_length
        elapsed = timestamp - self.start_time
        return min(self.path_length, int(elapsed / self.holding_period) + 1)

    def boundaries(self) -> List[float]:
        """All forwarding instants, ``[ts + th, ts + 2*th, ..., tr]``."""
        return [self.forward_time(column) for column in range(1, self.path_length + 1)]

    def alpha(self, mean_lifetime: float) -> float:
        """The churn ratio ``α = T / t_life`` used by the Fig. 7 sweep."""
        check_positive(mean_lifetime, "mean_lifetime")
        return self.emerging_period / mean_lifetime

    def _check_column(self, column: int) -> None:
        if not 1 <= column <= self.path_length:
            raise ValueError(
                f"column must be in [1, {self.path_length}], got {column}"
            )

    def with_path_length(self, path_length: int) -> "ReleaseTimeline":
        """Same window, different path length (planner adjustments)."""
        return ReleaseTimeline(
            start_time=self.start_time,
            release_time=self.release_time,
            path_length=path_length,
        )
