"""The data sender (Alice, paper §II-A).

``DataSender.send_*`` performs everything the paper requires of Alice at
the start time and nothing after it:

1. generate a fresh secret key, encrypt the message, upload the ciphertext
   to the cloud;
2. pseudo-randomly select holders and build the scheme's structure;
3. locally build the onion package(s) — and, for key-share routing, the
   Shamir shares;
4. at ``ts``, hand layer keys / shares / onions to the first holders.

After ``ts`` Alice can go offline; the event loop carries the protocol to
``tr`` on its own.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cloud.storage import BlobMetadata, CloudStore
from repro.core.onion import OnionCore, build_onion
from repro.core.packages import (
    LayerKeyPackage,
    OnionPackage,
    SharePackage,
)
from repro.core.paths import HolderGrid, ShareLattice, build_grid
from repro.core.timeline import ReleaseTimeline
from repro.crypto.cipher import encrypt
from repro.crypto.keys import SecretKey, generate_key
from repro.crypto.shamir import split_secret
from repro.dht.kademlia import KademliaNode
from repro.dht.node_id import NodeId, unique_random_ids
from repro.dht.rpc import Deliver
from repro.util.rng import RandomSource
from repro.util.validation import check_positive_int


@dataclass(frozen=True)
class SendResult:
    """Everything Alice knows after ``ts`` (and the tests need)."""

    key_id: bytes
    secret_key: SecretKey
    blob: BlobMetadata
    timeline: ReleaseTimeline
    scheme: str
    structure: object  # HolderGrid | ShareLattice | NodeId
    layer_keys: Tuple[bytes, ...] = ()


class DataSender:
    """Alice: one DHT node plus the local package-construction logic."""

    def __init__(
        self,
        node: KademliaNode,
        cloud: CloudStore,
        rng: RandomSource,
        name: str = "alice",
    ) -> None:
        self.node = node
        self.cloud = cloud
        self.rng = rng
        self.name = name
        self._send_counter = 0

    # -- shared plumbing ------------------------------------------------------

    def _next_send_rng(self) -> RandomSource:
        """A fresh substream per send — without this, two sends would draw
        identical secret keys and holder selections."""
        self._send_counter += 1
        return self.rng.fork(f"send-{self._send_counter}")

    def _prepare(self, rng: RandomSource, message: bytes, readers: Optional[set] = None):
        secret_key = generate_key(rng.fork("secret-key"))
        ciphertext = encrypt(secret_key.material, message, rng.fork("encrypt"))
        blob = self.cloud.upload(self.name, ciphertext, readers=readers)
        key_id = bytes.fromhex(secret_key.fingerprint)
        return secret_key, blob, key_id

    def _deliver_at(self, timestamp: float, target: NodeId, package) -> None:
        request = Deliver(
            sender=self.node.node_id,
            channel=package.channel,
            payload=package.to_bytes(),
        )
        self.node.network.send_at(timestamp, request, target)

    def _holder_population(self, exclude: set) -> List[NodeId]:
        population = [
            node_id
            for node_id in self.node.network.online_ids()
            if node_id not in exclude
        ]
        if not population:
            raise RuntimeError("no eligible holder nodes online")
        return population

    # -- centralized scheme ------------------------------------------------------

    def send_centralized(
        self,
        message: bytes,
        timeline: ReleaseTimeline,
        receiver_id: NodeId,
    ) -> SendResult:
        """Paper §III-A: one holder stores the key for the whole period.

        Implemented as a single-layer onion so the holder code path is
        identical: the holder peels with its pre-assigned key and finds the
        core immediately, then holds the secret until ``tr``.
        """
        if timeline.path_length != 1:
            raise ValueError("the centralized scheme uses a length-1 timeline")
        rng = self._next_send_rng()
        secret_key, blob, key_id = self._prepare(rng, message)
        exclude = {self.node.node_id, receiver_id}
        holder = rng.fork("holder").choice(self._holder_population(exclude))
        layer_key = rng.fork("layer-key").random_bytes(32)
        onion = build_onion(
            layer_keys=[layer_key],
            hop_ids=[[]],
            core=OnionCore(
                secret=secret_key.material, receiver_id=receiver_id.to_bytes()
            ),
            forward_times=[timeline.release_time],
            rng=rng.fork("onion-nonce"),
        )
        ts = timeline.start_time
        self._deliver_at(
            ts, holder, LayerKeyPackage(key_id=key_id, column=1, key=layer_key)
        )
        self._deliver_at(ts, holder, OnionPackage(key_id=key_id, row=0, blob=onion))
        return SendResult(
            key_id=key_id,
            secret_key=secret_key,
            blob=blob,
            timeline=timeline,
            scheme="central",
            structure=holder,
            layer_keys=(layer_key,),
        )

    # -- multipath schemes ------------------------------------------------------

    def send_multipath(
        self,
        message: bytes,
        timeline: ReleaseTimeline,
        receiver_id: NodeId,
        replication: int,
        joint: bool,
        grid: Optional[HolderGrid] = None,
    ) -> SendResult:
        """Paper §III-B/C: ``k`` onion paths over a ``k x l`` holder grid.

        ``joint=False`` keeps every onion on its own row (node-disjoint);
        ``joint=True`` fans every hop out to the whole next column.  Layer
        keys are pre-assigned to the grid at ``ts``.
        """
        check_positive_int(replication, "replication")
        rng = self._next_send_rng()
        secret_key, blob, key_id = self._prepare(rng, message)
        length = timeline.path_length
        if grid is None:
            exclude = {self.node.node_id, receiver_id}
            grid = build_grid(
                self._holder_population(exclude),
                replication,
                length,
                rng.fork("grid"),
            )
        if grid.path_length != length:
            raise ValueError(
                f"grid length {grid.path_length} != timeline length {length}"
            )
        key_rng = rng.fork("layer-keys")
        layer_keys = [key_rng.random_bytes(32) for _ in range(length)]
        forward_times = [timeline.forward_time(j) for j in range(1, length + 1)]
        core = OnionCore(
            secret=secret_key.material, receiver_id=receiver_id.to_bytes()
        )
        ts = timeline.start_time

        # Pre-assign layer keys: every column-j holder stores K_j.
        for column in range(1, length + 1):
            for holder in grid.column(column):
                self._deliver_at(
                    ts,
                    holder,
                    LayerKeyPackage(
                        key_id=key_id, column=column, key=layer_keys[column - 1]
                    ),
                )

        if joint:
            # One onion; every layer names the whole next column.
            hop_ids = [
                [holder.to_bytes() for holder in grid.column(column + 1)]
                for column in range(1, length)
            ] + [[]]
            onion = build_onion(
                layer_keys,
                hop_ids,
                core,
                forward_times=forward_times,
                rng=rng.fork("onion-nonce"),
            )
            for holder in grid.column(1):
                self._deliver_at(
                    ts, holder, OnionPackage(key_id=key_id, row=0, blob=onion)
                )
        else:
            # One onion per row, each following its own path.
            for row_index in range(1, grid.replication + 1):
                row = grid.row(row_index)
                hop_ids = [
                    [row[column].to_bytes()] for column in range(1, length)
                ] + [[]]
                onion = build_onion(
                    layer_keys,
                    hop_ids,
                    core,
                    forward_times=forward_times,
                    rng=rng.fork(f"onion-nonce-{row_index}"),
                )
                self._deliver_at(
                    ts,
                    row[0],
                    OnionPackage(key_id=key_id, row=row_index, blob=onion),
                )

        return SendResult(
            key_id=key_id,
            secret_key=secret_key,
            blob=blob,
            timeline=timeline,
            scheme="joint" if joint else "disjoint",
            structure=grid,
            layer_keys=tuple(layer_keys),
        )

    # -- key-share routing ------------------------------------------------------

    def send_key_share(
        self,
        message: bytes,
        timeline: ReleaseTimeline,
        receiver_id: NodeId,
        share_rows: int,
        secret_rows: int,
        thresholds: Sequence[int],
    ) -> SendResult:
        """Paper §III-D: route layer keys as Shamir shares beside the onions.

        ``share_rows`` is ``n``; ``secret_rows`` is ``k`` (how many rows
        carry the real secret in their core — the onion paths); ``thresholds``
        gives ``m`` per column (length ``l``; column 1's entry is unused
        since its keys are handed over directly).

        Hops are *id-space targets* (fresh random ids), re-resolved by each
        forwarding holder — the churn-resilience mechanism.  Every row has
        its own layer-key chain; shares of row ``r``'s column-``j`` key are
        spread across all rows at column ``j - 1``.
        """
        check_positive_int(share_rows, "share_rows")
        check_positive_int(secret_rows, "secret_rows")
        if secret_rows > share_rows:
            raise ValueError("secret_rows cannot exceed share_rows")
        length = timeline.path_length
        if length < 2:
            raise ValueError("key-share routing needs path length >= 2")
        if len(thresholds) != length:
            raise ValueError(
                f"need {length} thresholds (column 1 unused), got {len(thresholds)}"
            )
        rng = self._next_send_rng()
        secret_key, blob, key_id = self._prepare(rng, message)
        ts = timeline.start_time
        n = share_rows

        # Per-row layer-key chains.
        key_rng = rng.fork("chain-keys")
        chains = [
            [key_rng.random_bytes(32) for _ in range(length)] for _ in range(n)
        ]

        # Id-space targets per (row, column); column 1 is resolved now.
        target_rng = rng.fork("targets")
        exclude = {self.node.node_id, receiver_id}
        targets = [
            unique_random_ids(target_rng.fork(f"row-{row}"), length)
            for row in range(n)
        ]
        lattice = ShareLattice(
            rows=tuple(tuple(column_targets) for column_targets in targets),
            thresholds=tuple(thresholds),
        )

        # Shares: share index r of row r''s column-j key goes into row r's
        # layer j-1.  shares[j][row_to][row_from] = Share.
        share_rng = rng.fork("shares")
        shares_by_column: Dict[int, List[List]] = {}
        for column in range(2, length + 1):
            m = thresholds[column - 1]
            per_row = []
            for row_to in range(n):
                split = split_secret(
                    chains[row_to][column - 1],
                    threshold=m,
                    share_count=n,
                    rng=share_rng.fork(f"split-{column}-{row_to}"),
                )
                per_row.append(split)
            shares_by_column[column] = per_row

        forward_times = [timeline.forward_time(j) for j in range(1, length + 1)]
        onions = []
        onion_rng = rng.fork("onion-nonces")
        for row in range(n):
            hop_ids: List[List[bytes]] = []
            forward_shares: List[List] = []
            for column in range(1, length):
                hops = [targets[row_to][column].to_bytes() for row_to in range(n)]
                layer_shares = [
                    shares_by_column[column + 1][row_to][row]
                    for row_to in range(n)
                ]
                hop_ids.append(hops)
                forward_shares.append(layer_shares)
            hop_ids.append([])
            forward_shares.append([])
            if row < secret_rows:
                core = OnionCore(
                    secret=secret_key.material, receiver_id=receiver_id.to_bytes()
                )
            else:
                core = OnionCore(secret=b"", receiver_id=b"")
            onions.append(
                build_onion(
                    chains[row],
                    hop_ids,
                    core,
                    forward_shares=forward_shares,
                    forward_times=forward_times,
                    rng=onion_rng.fork(f"row-{row}"),
                )
            )

        # At ts: resolve column-1 targets, hand over first keys and onions.
        for row in range(n):
            first = self.node.find_closest_online(targets[row][0])
            if first is None or first in exclude:
                # Extremely unlikely with a healthy overlay; re-resolving a
                # fresh target keeps the send robust rather than failing.
                first = rng.fork(f"fallback-{row}").choice(
                    self._holder_population(exclude)
                )
            self._deliver_at(
                ts,
                first,
                LayerKeyPackage(key_id=key_id, column=1, key=chains[row][0]),
            )
            self._deliver_at(
                ts, first, OnionPackage(key_id=key_id, row=row + 1, blob=onions[row])
            )

        return SendResult(
            key_id=key_id,
            secret_key=secret_key,
            blob=blob,
            timeline=timeline,
            scheme="share",
            structure=lattice,
            layer_keys=tuple(chains[0]),
        )
