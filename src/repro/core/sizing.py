"""Communication and storage cost accounting per scheme.

The paper's cost axis is *node count*; a downstream deployment also cares
about bytes on the wire and per-holder storage.  This module computes both
analytically from the wire formats (and the tests cross-check the byte
numbers against actually-built onions), powering the cost ablation bench.

Model, per self-emerging key instance:

- ciphertext overhead: nonce (16) + tag (32) per encryption layer;
- layer header: type byte + column u32 + forward-time f64 + hop list +
  share list + length prefixes (see ``repro.core.onion``);
- multipath: ``k * l`` layer-key deliveries at ts, plus the onion(s)
  traversing ``l`` columns;
- key-share: ``n`` onions, each layer carrying ``n`` shares of 32-byte
  keys, plus ``n^2`` share deliveries per boundary.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.cipher import ciphertext_overhead
from repro.util.validation import check_positive_int

NODE_ID_BYTES = 20
LAYER_KEY_BYTES = 32
SECRET_BYTES = 32
U32 = 4
F64 = 8
TYPE_BYTE = 1

# Wire costs of one serialized Share: u8 index + u8 threshold + length
# prefix + payload (a 32-byte layer key).
SHARE_BYTES = 1 + 1 + U32 + LAYER_KEY_BYTES


@dataclass(frozen=True)
class SchemeCost:
    """Per-instance cost summary."""

    scheme: str
    holders: int
    messages: int  # protocol deliveries from ts through tr
    onion_bytes: int  # size of the (largest) onion as sent at ts
    total_bytes: int  # all deliveries summed

    def __str__(self) -> str:
        return (
            f"{self.scheme:>9}: holders={self.holders:6d} "
            f"messages={self.messages:7d} onion={self.onion_bytes:8d}B "
            f"total={self.total_bytes:10d}B"
        )


def _core_bytes() -> int:
    # type byte + two length-prefixed byte strings (secret, receiver id).
    return TYPE_BYTE + U32 + SECRET_BYTES + U32 + NODE_ID_BYTES


def _layer_plain_bytes(hop_count: int, share_count: int, inner: int) -> int:
    hops = U32 + hop_count * (U32 + NODE_ID_BYTES)
    shares = U32 + share_count * (U32 + SHARE_BYTES)
    return TYPE_BYTE + U32 + F64 + hops + shares + (U32 + inner)


def onion_size(
    path_length: int, hops_per_layer: int, shares_per_layer: int = 0
) -> int:
    """Exact byte size of an onion built by :func:`repro.core.onion.build_onion`."""
    check_positive_int(path_length, "path_length")
    size = _core_bytes()
    for column in range(path_length, 0, -1):
        hop_count = 0 if column == path_length else hops_per_layer
        share_count = 0 if column == path_length else shares_per_layer
        size = _layer_plain_bytes(hop_count, share_count, size) + ciphertext_overhead()
    return size


def centralized_cost() -> SchemeCost:
    """One holder, one key delivery, one single-layer onion, one release."""
    onion = onion_size(1, 0)
    key_message = LAYER_KEY_BYTES + U32 * 2  # LayerKeyPackage approximation
    total = key_message + onion + SECRET_BYTES
    return SchemeCost(
        scheme="central",
        holders=1,
        messages=3,
        onion_bytes=onion,
        total_bytes=total,
    )


def multipath_cost(replication: int, path_length: int, joint: bool) -> SchemeCost:
    """Key pre-assignment + onion traversal for the two multipath schemes."""
    k = check_positive_int(replication, "replication")
    l = check_positive_int(path_length, "path_length")
    hops = k if joint else 1
    onion = onion_size(l, hops)
    key_messages = k * l
    key_bytes = key_messages * (LAYER_KEY_BYTES + U32 * 2)
    if joint:
        # One onion replicated: k first-hop sends, then k senders x k
        # receivers per later boundary; terminal column releases k copies.
        onion_messages = k + (l - 1) * k * k + k
    else:
        onion_messages = k * l + k  # each row onion hops l times + release
    # The onion shrinks as layers peel; upper-bound with the full size,
    # which is what capacity planning needs.
    total = key_bytes + onion_messages * onion
    return SchemeCost(
        scheme="joint" if joint else "disjoint",
        holders=k * l,
        messages=key_messages + onion_messages,
        onion_bytes=onion,
        total_bytes=total,
    )


def key_share_cost(share_rows: int, path_length: int) -> SchemeCost:
    """Share-lattice traversal: n onions, n^2 share sends per boundary."""
    n = check_positive_int(share_rows, "share_rows")
    l = check_positive_int(path_length, "path_length", minimum=2)
    onion = onion_size(l, n, shares_per_layer=n)
    first_hop = 2 * n  # key + onion per row at ts
    boundaries = (l - 1) * (n * n + n)  # shares to all rows + own onion
    releases = n
    messages = first_hop + boundaries + releases
    share_message_bytes = SHARE_BYTES + U32 * 3
    total = (
        n * (LAYER_KEY_BYTES + U32 * 2)
        + n * onion  # first hops
        + (l - 1) * n * onion  # onion forwards (own row)
        + (l - 1) * n * n * share_message_bytes
        + releases * SECRET_BYTES
    )
    return SchemeCost(
        scheme="share",
        holders=n * l,
        messages=messages,
        onion_bytes=onion,
        total_bytes=total,
    )
