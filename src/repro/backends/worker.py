"""The distributed sweep worker: a TCP server that executes trial spans.

``repro worker serve --bind host:port`` runs one of these next to the
data — any machine with the same codebase on ``PYTHONPATH``.  The
orchestrator side (:class:`~repro.backends.distributed.DistributedBackend`)
connects, ships the pickled :class:`~repro.experiments.executors.TrialTask`
once per engine run, then streams span requests; the worker executes each
span with the *same* range functions every local executor uses
(:func:`~repro.experiments.executors.run_count_range` & co.), so per-trial
random streams — a pure function of ``(seed, label, index)`` — are
identical across machines and the determinism contract survives the
network hop.

Connections are stateful (one current task per connection) and served one
per thread, so several orchestrators — or several concurrent span threads
of one — can share a worker.  The server is deliberately trusting: the
protocol ships pickles, so bind it only on interfaces you control (the
default is loopback), exactly like every other pickle-based worker pool.
"""

from __future__ import annotations

import socketserver
import threading
import traceback
from typing import Any, Dict, Optional, Tuple

from repro.backends.wire import (
    PROTOCOL_VERSION,
    WORKER_ROLE,
    ProtocolError,
    decode_blob,
    encode_blob,
    recv_message,
    send_message,
)
from repro.experiments.executors import (
    run_batch_range,
    run_collect_range,
    run_count_range,
)

_RUN_MODES = ("counts", "batches", "collect")


def _execute_span(task: Any, mode: str, start: int, stop: int) -> Dict[str, Any]:
    """Run one span through the shared range functions; JSON-safe reply."""
    if mode == "counts":
        return {"ok": True, "counts": run_count_range(task, start, stop)}
    if mode == "batches":
        return {"ok": True, "counts": run_batch_range(task, start, stop)}
    if mode == "collect":
        values = run_collect_range(task, start, stop)
        return {"ok": True, "values": encode_blob(values)}
    raise ValueError(f"run mode must be one of {_RUN_MODES}, got {mode!r}")


class _WorkerHandler(socketserver.BaseRequestHandler):
    """One connection: a hello/task/run conversation until EOF."""

    def handle(self) -> None:
        task: Optional[Any] = None
        while True:
            try:
                message = recv_message(self.request)
            except ProtocolError:
                return  # garbage or a torn frame: drop the connection
            if message is None:
                return
            op = message.get("op")
            try:
                if op == "hello":
                    reply: Dict[str, Any] = {
                        "ok": True,
                        "role": WORKER_ROLE,
                        "protocol": PROTOCOL_VERSION,
                        "modes": list(_RUN_MODES),
                    }
                elif op == "ping":
                    reply = {"ok": True}
                elif op == "task":
                    task = decode_blob(message["task"])
                    reply = {"ok": True}
                elif op == "run":
                    if task is None:
                        raise RuntimeError(
                            "no task loaded on this connection (send op=task first)"
                        )
                    reply = _execute_span(
                        task,
                        message.get("mode", ""),
                        int(message["start"]),
                        int(message["stop"]),
                    )
                else:
                    raise ValueError(f"unknown op {op!r}")
            except Exception as error:  # noqa: BLE001 - reply, don't die
                self.server.record_failure()
                reply = {
                    "ok": False,
                    "error": f"{type(error).__name__}: {error}",
                    "traceback": traceback.format_exc(),
                }
            try:
                send_message(self.request, reply)
            except OSError:  # pragma: no cover - client vanished mid-reply
                return


class WorkerServer(socketserver.ThreadingTCPServer):
    """A threaded trial-span server with an inspectable lifecycle.

    ``port=0`` binds an ephemeral port (tests); :attr:`address` reports
    the bound ``(host, port)`` either way.  :meth:`serve_background`
    starts the accept loop on a daemon thread and returns, which is how
    the in-process cross-backend tests and the CLI's foreground
    :func:`serve` both drive it.
    """

    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, host: str = "127.0.0.1", port: int = 0) -> None:
        super().__init__((host, port), _WorkerHandler)
        self._thread: Optional[threading.Thread] = None
        self._failures = 0
        self._failures_lock = threading.Lock()

    @property
    def address(self) -> Tuple[str, int]:
        """The actually-bound (host, port) — resolves ``port=0``."""
        host, port = self.server_address[:2]
        return host, port

    def record_failure(self) -> None:
        with self._failures_lock:
            self._failures += 1

    @property
    def failures(self) -> int:
        """Requests answered with ``ok: false`` since startup."""
        with self._failures_lock:
            return self._failures

    def serve_background(self) -> "WorkerServer":
        """Start the accept loop on a daemon thread; idempotent."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self.serve_forever,
                name=f"repro-worker-{self.address[1]}",
                daemon=True,
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        """Shut the accept loop down and release the socket."""
        self.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None
        self.server_close()

    def __enter__(self) -> "WorkerServer":
        return self.serve_background()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()


def serve(host: str, port: int) -> None:
    """Run a worker in the foreground until interrupted (the CLI path)."""
    server = WorkerServer(host, port)
    bound_host, bound_port = server.address
    print(
        f"repro worker listening on {bound_host}:{bound_port} "
        f"(protocol {PROTOCOL_VERSION})",
        flush=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive path
        pass
    finally:
        server.server_close()
