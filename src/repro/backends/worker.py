"""The distributed sweep worker: a TCP server that executes trial spans.

``repro worker serve --bind host:port`` runs one of these next to the
data — any machine with the same codebase on ``PYTHONPATH``.  The
orchestrator side (:class:`~repro.backends.distributed.DistributedBackend`)
connects, ships the pickled :class:`~repro.experiments.executors.TrialTask`
once per engine run, then streams span requests; the worker executes each
span with the *same* range functions every local executor uses
(:func:`~repro.experiments.executors.run_count_range` & co.), so per-trial
random streams — a pure function of ``(seed, label, index)`` — are
identical across machines and the determinism contract survives the
network hop.

Connections are stateful (one current task per connection) and served one
per thread, so several orchestrators — or several concurrent span threads
of one — can share a worker, and a heartbeat ``ping`` on a fresh
connection answers even while every other connection is busy computing.
The server is deliberately trusting: the protocol ships pickles, so bind
it only on interfaces you control (the default is loopback), exactly like
every other pickle-based worker pool.

**Cancellation.**  Spans execute as ~8 sub-slices with a cooperative
cancel check between each (additive merging keeps results byte-identical
— see :func:`_execute_span`).  The ``cancel`` op bumps a server-wide
generation counter; every in-flight span notices within a sub-slice and
replies ``cancelled: true`` instead of computing the rest, and the
driver requeues it.  This is what lets a draining or deadline-struck
worker hand back a running span in milliseconds.

**Shutdown.**  Open connections are tracked, and every stop path —
:meth:`WorkerServer.stop`, ``SIGTERM``/``Ctrl-C`` on the foreground
:func:`serve` loop — force-closes them after the accept loop exits, so a
client blocked on a reply observes EOF (a typed
:class:`~repro.backends.wire.ProtocolError` at the frame layer)
immediately instead of hanging on a half-open socket.

**Fault injection.**  A server built with a
:class:`~repro.backends.faults.FaultSpec` applies it at the scripted
point in its span stream (see :mod:`repro.backends.faults`):
:meth:`die` is the abrupt worker death (``os._exit`` in a real process,
close-everything in-process), :meth:`wedge` the silent hang.  This is
how the chaos tests and the CI chaos job script "kill worker 1 after 2
spans" deterministically.
"""

from __future__ import annotations

import os
import signal
import socket
import socketserver
import threading
import time
import traceback
from typing import Any, Dict, Optional, Set, Tuple

from repro.backends.faults import FaultInjector, FaultSpec
from repro.backends.wire import (
    PROTOCOL_VERSION,
    WORKER_ROLE,
    ProtocolError,
    decode_blob,
    encode_blob,
    recv_message,
    send_message,
)
from repro.experiments.executors import (
    run_batch_range,
    run_collect_range,
    run_count_range,
)
from repro.obs.metrics import MetricsRegistry

_RUN_MODES = ("counts", "batches", "collect")

#: Ops counted under their own name; anything else lands in
#: ``ops.unknown`` so a misbehaving client cannot mint metric names.
_COUNTED_OPS = ("hello", "ping", "task", "run", "stats", "cancel")

#: How long a ``hang`` fault holds its wedged connection open when the
#: spec does not say (long enough that only liveness probing detects it).
_DEFAULT_HANG_SECONDS = 60.0

#: Cancellation checks per span: each span is executed in roughly this
#: many sub-slices, checking the cancel generation between them.  The
#: range functions are additive over *any* disjoint partition (per-trial
#: streams are pure functions of ``(seed, label, index)``), so
#: sub-slicing is invisible in results; it just bounds how long a cancel
#: can go unnoticed to ~1/8 of the span.
_CANCEL_CHECKS = 8

_RANGE_FNS = {
    "counts": run_count_range,
    "batches": run_batch_range,
    "collect": run_collect_range,
}


def _execute_span(
    task: Any,
    mode: str,
    start: int,
    stop: int,
    should_abandon: Optional[Any] = None,
) -> Dict[str, Any]:
    """Run one span through the shared range functions; JSON-safe reply.

    With ``should_abandon``, the span runs as ~:data:`_CANCEL_CHECKS`
    sub-slices with a cancellation check between each; a fired check
    abandons the rest and replies ``cancelled: true`` — the client
    requeues the span, so abandoning is always safe.  Partial sub-slice
    results are merged exactly as the distributed driver merges spans
    (integer count addition, in-order value concatenation), so a span
    that is *not* cancelled returns bytes identical to a single-shot run.
    """
    range_fn = _RANGE_FNS.get(mode)
    if range_fn is None:
        raise ValueError(f"run mode must be one of {_RUN_MODES}, got {mode!r}")

    def reply_for(payload: Any) -> Dict[str, Any]:
        if mode == "collect":
            return {"ok": True, "values": encode_blob(payload)}
        return {"ok": True, "counts": payload}

    if should_abandon is None:
        return reply_for(range_fn(task, start, stop))
    step = max(1, -(-(stop - start) // _CANCEL_CHECKS))
    merged: Optional[Any] = None
    low = start
    while low < stop:
        if should_abandon():
            return {"ok": True, "cancelled": True}
        high = min(low + step, stop)
        partial = range_fn(task, low, high)
        if merged is None:
            merged = list(partial)
        elif mode == "collect":
            merged.extend(partial)
        else:
            for channel, value in enumerate(partial):
                merged[channel] += value
        low = high
    return reply_for(merged if merged is not None else range_fn(task, start, stop))


def _cancellable_sleep(
    delay: float, should_abandon: Any, step: float = 0.02
) -> bool:
    """Sleep ``delay`` seconds unless cancelled; False means abandoned.

    The ``slow`` fault's sleep must be drain-cancellable too, or a chaos
    worker scripted slow would hold a drain hostage for the very latency
    the test injected.
    """
    deadline = time.monotonic() + max(0.0, delay)
    while True:
        if should_abandon():
            return False
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            return True
        time.sleep(min(step, remaining))


class _WorkerHandler(socketserver.BaseRequestHandler):
    """One connection: a hello/task/run conversation until EOF."""

    def handle(self) -> None:
        task: Optional[Any] = None
        while True:
            try:
                message = recv_message(self.request)
            except (ProtocolError, OSError):
                # Garbage, a torn frame, or our own shutdown closing the
                # socket under us: drop the connection.
                return
            if message is None:
                return
            op = message.get("op")
            metrics = self.server.metrics
            metrics.counter(
                f"ops.{op if op in _COUNTED_OPS else 'unknown'}"
            ).inc()
            try:
                if op == "hello":
                    reply: Dict[str, Any] = {
                        "ok": True,
                        "role": WORKER_ROLE,
                        "protocol": PROTOCOL_VERSION,
                        "modes": list(_RUN_MODES),
                    }
                elif op == "ping":
                    reply = {"ok": True}
                elif op == "task":
                    task = decode_blob(message["task"])
                    reply = {"ok": True}
                elif op == "stats":
                    reply = {"ok": True, "stats": metrics.snapshot()}
                elif op == "cancel":
                    # Cooperative mid-span drain: bump the generation so
                    # every in-flight span (they check between
                    # sub-slices) abandons and replies cancelled.
                    reply = {"ok": True, "cancelled": self.server.cancel_spans()}
                elif op == "run":
                    fault = self.server.take_fault()
                    if fault is not None and fault.kind != "slow":
                        # The faulted span is never executed nor answered:
                        # the client must recover it on another worker.
                        if fault.kind == "drop":
                            return
                        if fault.kind == "kill":
                            self.server.die()
                            return
                        # hang: stop accepting (heartbeats now fail) and
                        # hold this connection open, silently.
                        self.server.wedge()
                        time.sleep(fault.delay or _DEFAULT_HANG_SECONDS)
                        return
                    # Any cancel arriving after this point abandons the
                    # span; one arriving before only affects older spans.
                    generation = self.server.cancel_generation

                    def abandoned() -> bool:
                        return self.server.cancel_generation != generation

                    self.server.span_begun()
                    try:
                        if fault is not None and not _cancellable_sleep(
                            fault.delay, abandoned
                        ):
                            # slow: late but correct — unless drained away.
                            reply = {"ok": True, "cancelled": True}
                        else:
                            if task is None:
                                raise RuntimeError(
                                    "no task loaded on this connection "
                                    "(send op=task first)"
                                )
                            mode = message.get("mode", "")
                            start = int(message["start"])
                            stop = int(message["stop"])
                            began = time.perf_counter()
                            reply = _execute_span(
                                task, mode, start, stop, should_abandon=abandoned
                            )
                            if not reply.get("cancelled"):
                                # Only completed spans record service time —
                                # mode is validated by now, so the metric
                                # name is well-formed.
                                metrics.histogram(
                                    f"service_seconds.{mode}"
                                ).observe(time.perf_counter() - began)
                                metrics.counter(f"units.{mode}").inc(
                                    max(0, stop - start)
                                )
                    finally:
                        self.server.span_ended()
                    if reply.get("cancelled"):
                        metrics.counter("spans_cancelled").inc()
                else:
                    raise ValueError(f"unknown op {op!r}")
            except Exception as error:  # noqa: BLE001 - reply, don't die
                self.server.record_failure()
                metrics.counter("errors").inc()
                reply = {
                    "ok": False,
                    "error": f"{type(error).__name__}: {error}",
                    "traceback": traceback.format_exc(),
                }
            try:
                send_message(self.request, reply)
            except OSError:  # pragma: no cover - client vanished mid-reply
                return


class WorkerServer(socketserver.ThreadingTCPServer):
    """A threaded trial-span server with an inspectable lifecycle.

    ``port=0`` binds an ephemeral port (tests); :attr:`address` reports
    the bound ``(host, port)`` either way.  :meth:`serve_background`
    starts the accept loop on a daemon thread and returns, which is how
    the in-process cross-backend tests and the CLI's foreground
    :func:`serve` both drive it.  ``fault`` scripts this worker's
    failure (see :mod:`repro.backends.faults`); ``exit_on_kill`` makes a
    ``kill`` fault a genuine ``os._exit`` — the CLI's subprocess mode.
    """

    allow_reuse_address = True
    daemon_threads = True

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        fault: Optional[FaultSpec] = None,
        exit_on_kill: bool = False,
    ) -> None:
        super().__init__((host, port), _WorkerHandler)
        self._thread: Optional[threading.Thread] = None
        #: Worker-side telemetry: op counts, per-mode service-time
        #: histograms, units executed.  Served whole by the ``stats`` op
        #: and merged into the driver's registry at sweep close.
        self.metrics = MetricsRegistry()
        self._failures = 0
        self._failures_lock = threading.Lock()
        self._injector = FaultInjector(fault) if fault is not None else None
        self._exit_on_kill = exit_on_kill
        self._connections: Set[socket.socket] = set()
        self._connections_lock = threading.Lock()
        self._loop_started = False
        self._dying = False
        self._wedged = False
        self._cancel_lock = threading.Lock()
        self._cancel_generation = 0
        self._active_spans = 0

    @property
    def address(self) -> Tuple[str, int]:
        """The actually-bound (host, port) — resolves ``port=0``."""
        host, port = self.server_address[:2]
        return host, port

    def record_failure(self) -> None:
        with self._failures_lock:
            self._failures += 1

    @property
    def failures(self) -> int:
        """Requests answered with ``ok: false`` since startup."""
        with self._failures_lock:
            return self._failures

    # -- connection bookkeeping -------------------------------------------

    def process_request(self, request, client_address) -> None:
        with self._connections_lock:
            self._connections.add(request)
        super().process_request(request, client_address)

    def shutdown_request(self, request) -> None:
        with self._connections_lock:
            self._connections.discard(request)
        super().shutdown_request(request)

    def _close_connections(self) -> None:
        """Force-close every open connection so blocked peers see EOF."""
        with self._connections_lock:
            connections = list(self._connections)
            self._connections.clear()
        for connection in connections:
            try:
                connection.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                connection.close()
            except OSError:
                pass

    # -- cooperative cancellation -------------------------------------------

    @property
    def cancel_generation(self) -> int:
        """The current cancel epoch; spans capture it at start and abandon
        when it moves."""
        with self._cancel_lock:
            return self._cancel_generation

    def cancel_spans(self) -> int:
        """Abandon every in-flight span (the ``cancel`` op).

        Server-wide by design: a drain or deadline cancel means "stop
        working for anyone, now" — a span belonging to another driver
        sharing this worker simply requeues on *its* driver, which is
        always safe.  Returns how many spans were in flight.
        """
        with self._cancel_lock:
            self._cancel_generation += 1
            return self._active_spans

    def span_begun(self) -> None:
        with self._cancel_lock:
            self._active_spans += 1

    def span_ended(self) -> None:
        with self._cancel_lock:
            self._active_spans -= 1

    # -- fault application --------------------------------------------------

    def take_fault(self) -> Optional[FaultSpec]:
        """Count one ``run`` request against the fault plan (handler hook)."""
        if self._injector is None:
            return None
        return self._injector.on_span()

    @property
    def spans_served(self) -> int:
        """``run`` requests seen so far (0 without a fault injector)."""
        return 0 if self._injector is None else self._injector.spans_seen

    def die(self) -> None:
        """Abrupt worker death — the ``kill`` fault.

        In ``exit_on_kill`` mode (a real ``repro worker serve`` process)
        the process exits without any cleanup; in-process servers emulate
        that by tearing down the accept loop, the listening socket, and
        every open connection at once.  Either way clients observe EOF
        mid-conversation and reconnects are refused.
        """
        if self._exit_on_kill:
            print("repro worker: injected kill, exiting", flush=True)
            os._exit(1)
        self._dying = True
        self._stop_loop()
        self.server_close()
        self._close_connections()

    def wedge(self) -> None:
        """Stop accepting without touching open connections — the hang.

        Existing conversations go silent (the wedged handler never
        replies) and new connections — including heartbeat probes — are
        refused, which is exactly the signature of a stuck process.
        """
        self._wedged = True
        self.server_close()

    # -- lifecycle -----------------------------------------------------------

    def serve_forever(self, poll_interval: float = 0.1) -> None:
        self._loop_started = True
        try:
            super().serve_forever(poll_interval=poll_interval)
        except OSError:
            # The listening socket vanished under the accept loop: only
            # legitimate when a fault (die/wedge) closed it on purpose.
            if not (self._dying or self._wedged):
                raise

    def _stop_loop(self) -> None:
        # shutdown() blocks on an event serve_forever() sets on exit —
        # calling it when the loop never ran would wait forever.
        if self._loop_started:
            self.shutdown()

    def serve_background(self) -> "WorkerServer":
        """Start the accept loop on a daemon thread; idempotent."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self.serve_forever,
                name=f"repro-worker-{self.address[1]}",
                daemon=True,
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        """Shut down: accept loop, listening socket, open connections."""
        self._stop_loop()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None
        self.server_close()
        self._close_connections()

    def __enter__(self) -> "WorkerServer":
        return self.serve_background()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()


#: How long ``--announce`` keeps retrying an unreachable driver registry.
#: A replacement worker is routinely started *before* (or racing) the
#: sweep whose registry it joins — the CI chaos job does exactly that —
#: so a refused connection means "keep trying", not "give up".
_ANNOUNCE_RETRY_SECONDS = 60.0


def serve(
    host: str,
    port: int,
    fault: Optional[FaultSpec] = None,
    announce: Optional[str] = None,
) -> None:
    """Run a worker in the foreground until interrupted (the CLI path).

    ``SIGTERM`` and ``Ctrl-C`` both shut down cleanly: the accept loop
    exits, the listening socket and every open connection close (blocked
    clients get an immediate EOF, not a half-open hang), and the process
    returns 0.

    ``announce`` names a driver-side
    :class:`~repro.backends.membership.MembershipRegistry`
    (``"host:port"``): the worker announces its own bound address there
    from a background thread — retrying while the driver is still
    starting — and retires itself on clean shutdown so the driver drains
    it instead of striking it.
    """
    server = WorkerServer(host, port, fault=fault, exit_on_kill=True)
    bound_host, bound_port = server.address
    suffix = f", fault {fault.describe()}" if fault is not None else ""
    print(
        f"repro worker listening on {bound_host}:{bound_port} "
        f"(protocol {PROTOCOL_VERSION}{suffix})",
        flush=True,
    )

    announced_as: Optional[str] = None
    if announce is not None:
        from repro.backends.membership import (
            announce_worker,
            resolve_announced_address,
        )

        def _announce() -> None:
            nonlocal announced_as
            try:
                own_address = resolve_announced_address(
                    bound_host, bound_port, announce
                )
            except (OSError, ValueError):
                own_address = f"{bound_host}:{bound_port}"
            if announce_worker(
                announce,
                own_address,
                retry_seconds=_ANNOUNCE_RETRY_SECONDS,
            ):
                announced_as = own_address
                print(
                    f"repro worker announced {own_address} to {announce}",
                    flush=True,
                )
            else:
                print(
                    f"repro worker: announce to {announce} not accepted",
                    flush=True,
                )

        threading.Thread(
            target=_announce, name="repro-announce", daemon=True
        ).start()

    def _terminate(signum, frame):  # pragma: no cover - signal path
        raise KeyboardInterrupt

    previous_handler = signal.signal(signal.SIGTERM, _terminate)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("repro worker: shutting down", flush=True)
    finally:
        signal.signal(signal.SIGTERM, previous_handler)
        server.server_close()
        server._close_connections()
        if announce is not None and announced_as is not None:
            from repro.backends.membership import retire_worker

            retire_worker(announce, announced_as)
