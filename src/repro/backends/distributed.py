"""The distributed execution backend: spans over TCP workers, fault-tolerantly.

:class:`DistributedBackend` implements the
:class:`~repro.backends.base.ExecutionBackend` protocol against one or
more ``repro worker serve`` processes (see :mod:`repro.backends.worker`),
reachable as ``host:port`` addresses — or spawned on demand as a local
:class:`~repro.backends.pool.WorkerPool` via ``pool=N``.  One persistent
connection per worker is opened by :meth:`~DistributedBackend.open` and
reused for every engine run of a sweep — the remote analogue of the
one-pool-per-sweep contract.

Execution model per span call:

1. :meth:`start` pickles the task once; each worker receives it lazily,
   the first time (per engine run) a span is dispatched on its
   connection — which is also what makes reconnects transparent.  A task
   that cannot be pickled falls back to exact in-process execution for
   that run, mirroring
   :class:`~repro.experiments.executors.SweepPoolExecutor`.
2. ``run_counts``/``run_batches``/``run_collect`` split their half-open
   range into spans (``chunk_size`` each; default balances the range
   across live workers; ``"auto"`` sizes spans from recorded
   ``BENCH_*.json`` rates — see :mod:`repro.backends.autotune`), feed
   them through one shared work queue, and drive each live worker's
   connection from its own thread — workers *pull* spans as they finish,
   so a slow worker naturally takes fewer.
3. Counts are summed in span order — exact integer addition over
   per-span counts that are pure functions of ``(task, span)`` — and
   collect values are re-assembled in span order, preserving trial-index
   order.

**Fault tolerance.**  A span dispatch that fails at the transport level
(EOF, refused reconnect, a torn frame, a wire timeout, a heartbeat
declaring the worker dead) *requeues the span* for the surviving
workers, up to ``span_retries`` attempts per span.  Because every span's
counts are a pure function of the task and the span bounds, re-executing
a span — even one the dying worker may have half-finished — produces the
exact same numbers, so results and result-store cache keys stay
**byte-identical** to a clean run; the fault-injection suite
(``tests/backends/test_faults.py``) and the CI ``chaos`` job assert
exactly that.  Per-worker failures are tracked as consecutive *strikes*
(reset by any completed span): at ``breaker_threshold`` strikes the
circuit breaker opens and the worker is excluded for the rest of the
backend's lifetime, so a flapping worker cannot stall every remaining
span.  A worker that stops sending reply bytes for
``heartbeat_interval`` seconds is probed with a ``ping`` on a fresh
connection (see :func:`~repro.backends.wire.probe_worker`): a *slow*
worker answers and the client keeps waiting; a *dead* one fails the
probe and its span is requeued immediately.  Only when every worker is
dead or circuit-broken with spans still pending does the dispatch raise
(:class:`NoWorkersLeft`) — and because the sweep orchestrator persists
completed points, ``repro sweep resume`` continues even that sweep
without recomputing anything.

Worker-side *task* errors (an ``ok: false`` reply) are deterministic —
the same span would fail identically on every worker — so they abort the
dispatch immediately with the remote traceback, exactly as before.
"""

from __future__ import annotations

import pickle
import socket
import threading
from collections import deque
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.backends.wire import (
    WORKER_ROLE,
    ProtocolError,
    decode_blob,
    encode_blob,
    parse_address,
    probe_worker,
    request,
)
from repro.experiments.executors import (
    TrialExecutor,
    TrialTask,
    run_batch_range,
    run_collect_range,
    run_count_range,
)
from repro.util.validation import check_positive_int

#: Re-dispatch attempts allowed per span before the run is declared failed.
DEFAULT_SPAN_RETRIES = 5

#: Consecutive failures that open a worker's circuit breaker.
DEFAULT_BREAKER_THRESHOLD = 3

#: Seconds of reply silence before a heartbeat probe checks the worker.
DEFAULT_HEARTBEAT_INTERVAL = 5.0

#: Seconds a heartbeat probe may take before counting as dead.
DEFAULT_PING_TIMEOUT = 2.0


class WorkerLost(ConnectionError):
    """A worker stopped responding mid-span (heartbeat or hard timeout)."""


class NoWorkersLeft(ConnectionError):
    """Every worker is dead or circuit-broken with spans still pending."""


class _Worker:
    """Client-side state of one worker: connection, task cache, breaker."""

    def __init__(self, address: str, connect_timeout: float) -> None:
        self.address = address
        self.host, self.port = parse_address(address)
        self.connect_timeout = connect_timeout
        self.sock: Optional[socket.socket] = None
        #: The task payload loaded on the current connection, if any.
        self.loaded: Optional[str] = None
        #: Consecutive transport failures; any completed span resets it.
        self.strikes = 0
        #: Circuit breaker: once open, the worker is out for good.
        self.broken = False
        self.spans_completed = 0

    def connect(self) -> None:
        try:
            sock = socket.create_connection(
                (self.host, self.port), timeout=self.connect_timeout
            )
        except OSError as error:
            raise ConnectionError(
                f"cannot reach worker {self.address}: {error}"
            ) from error
        try:
            hello = request(sock, {"op": "hello"})
            if hello.get("role") != WORKER_ROLE:
                raise ConnectionError(
                    f"{self.address} is not a repro worker "
                    f"(role {hello.get('role')!r})"
                )
        except BaseException:
            sock.close()
            raise
        # Handshake done: span requests may run arbitrarily long (the
        # idle/heartbeat machinery bounds them, not the socket timeout).
        sock.settimeout(None)
        self.sock = sock
        self.loaded = None

    def drop_connection(self) -> None:
        if self.sock is not None:
            try:
                self.sock.close()
            except OSError:  # pragma: no cover - close on a dead socket
                pass
            self.sock = None
        self.loaded = None

    def probe(self, ping_timeout: float) -> bool:
        return probe_worker(self.host, self.port, timeout=ping_timeout)


class _SpanQueue:
    """The shared work queue one dispatch's driver threads pull from.

    Items are ``(span_index, (low, high), attempts)``.  A span is
    *outstanding* until some driver completes it; failed spans re-enter
    the queue.  :meth:`get` blocks until there is work, every span is
    done, or the dispatch is aborted — and the last driver to exit with
    spans still outstanding aborts the dispatch itself, so a caller can
    never deadlock waiting for workers that no longer exist.
    """

    def __init__(self, spans: Sequence[Tuple[int, int]], drivers: int) -> None:
        self._pending = deque(
            (index, span, 0) for index, span in enumerate(spans)
        )
        self._outstanding = len(spans)
        self._drivers = drivers
        self._error: Optional[BaseException] = None
        self._condition = threading.Condition()

    @property
    def error(self) -> Optional[BaseException]:
        with self._condition:
            return self._error

    def get(self) -> Optional[Tuple[int, Tuple[int, int], int]]:
        with self._condition:
            while True:
                if self._error is not None or self._outstanding == 0:
                    return None
                if self._pending:
                    return self._pending.popleft()
                self._condition.wait()

    def task_done(self) -> None:
        with self._condition:
            self._outstanding -= 1
            self._condition.notify_all()

    def requeue(self, item: Tuple[int, Tuple[int, int], int]) -> None:
        with self._condition:
            self._pending.append(item)
            self._condition.notify_all()

    def abort(self, error: BaseException) -> None:
        with self._condition:
            if self._error is None:
                self._error = error
            self._condition.notify_all()

    def driver_exited(self) -> None:
        with self._condition:
            self._drivers -= 1
            if (
                self._drivers == 0
                and self._outstanding > 0
                and self._error is None
            ):
                self._error = NoWorkersLeft(
                    f"{self._outstanding} span(s) still pending but every "
                    "worker is dead or circuit-broken"
                )
            self._condition.notify_all()


class DistributedBackend(TrialExecutor):
    """Dispatch trial spans to remote ``repro worker`` processes.

    Parameters
    ----------
    workers:
        Sequence of ``"host:port"`` worker addresses.  May be empty when
        ``pool`` is given.
    chunk_size:
        Trials (batches, in batch mode) per dispatched span.  ``None``
        balances the range across live workers; ``"auto"`` sizes spans
        from recorded benchmark rates (:mod:`repro.backends.autotune`),
        targeting sub-second spans so retry/rebalancing stays granular.
        Never observable in results.
    connect_timeout:
        Seconds allowed for TCP connect + hello handshake per worker.
    pool:
        Spawn a local :class:`~repro.backends.pool.WorkerPool` of this
        many ``repro worker serve`` processes in :meth:`open` and own
        its lifecycle — sweeps and tests stand up a pool in one call.
    span_retries:
        Re-dispatch attempts allowed per span before the run fails.
    breaker_threshold:
        Consecutive failures that open a worker's circuit breaker.
    heartbeat_interval:
        Seconds of reply silence before a liveness probe; slow workers
        answer the probe and are waited on, dead ones are requeued.
    ping_timeout:
        Deadline for each heartbeat probe.
    span_timeout:
        Optional hard cap on one span's wall time; on expiry the worker
        is treated as lost even if its heartbeat still answers.  ``None``
        (default) trusts the heartbeat alone.
    """

    supports_remote = True
    supports_fault_tolerance = True

    def __init__(
        self,
        workers: Sequence[str] = (),
        chunk_size: Union[int, str, None] = None,
        connect_timeout: float = 10.0,
        pool: Optional[int] = None,
        span_retries: int = DEFAULT_SPAN_RETRIES,
        breaker_threshold: int = DEFAULT_BREAKER_THRESHOLD,
        heartbeat_interval: float = DEFAULT_HEARTBEAT_INTERVAL,
        ping_timeout: float = DEFAULT_PING_TIMEOUT,
        span_timeout: Optional[float] = None,
    ) -> None:
        addresses = [
            worker.strip() for worker in workers if str(worker).strip()
        ]
        if pool is not None:
            check_positive_int(pool, "pool")
            if addresses:
                # Refusing beats silently ignoring one of them: an
                # operator who names a fleet AND asks for a pool would
                # otherwise run on fewer workers than they believe.
                raise ValueError(
                    "pass either workers=[...] or pool=N, not both"
                )
        if not addresses and pool is None:
            raise ValueError(
                "DistributedBackend needs at least one worker address "
                "('host:port') or pool=N to spawn a local worker pool"
            )
        self.workers: Tuple[str, ...] = tuple(addresses)
        for address in self.workers:
            parse_address(address)  # fail fast on typos
        if chunk_size not in (None, "auto"):
            check_positive_int(chunk_size, "chunk_size")
        self.chunk_size = chunk_size
        self.connect_timeout = connect_timeout
        self.pool_size = pool
        self.span_retries = check_positive_int(span_retries, "span_retries")
        self.breaker_threshold = check_positive_int(
            breaker_threshold, "breaker_threshold"
        )
        self.heartbeat_interval = heartbeat_interval
        self.ping_timeout = ping_timeout
        self.span_timeout = span_timeout
        self._pool: Optional[Any] = None
        self._workers: Optional[List[_Worker]] = None
        self._payload: Optional[str] = None
        self._stats_lock = threading.Lock()
        self.stats: Dict[str, int] = {
            "spans_completed": 0,
            "spans_requeued": 0,
            "worker_failures": 0,
            "workers_broken": 0,
            "heartbeat_probes": 0,
        }

    def _count(self, stat: str, amount: int = 1) -> None:
        with self._stats_lock:
            self.stats[stat] += amount

    # -- lifecycle ---------------------------------------------------------

    def open(self) -> "DistributedBackend":
        """Connect and handshake every worker; idempotent.

        Unreachable workers fail *loudly* here — at open time a bad
        address is an operator mistake, not churn; fault tolerance
        begins once the sweep is running.
        """
        if self._workers is not None:
            return self
        if self.pool_size is not None:
            from repro.backends.pool import WorkerPool

            self._pool = WorkerPool(workers=self.pool_size).start()
            self.workers = tuple(self._pool.addresses)
        workers = [
            _Worker(address, self.connect_timeout) for address in self.workers
        ]
        try:
            for worker in workers:
                worker.connect()
        except BaseException:
            for worker in workers:
                worker.drop_connection()
            if self._pool is not None:
                self._pool.stop()
                self._pool = None
            raise
        self._workers = workers
        return self

    def close(self) -> None:
        if self._workers is not None:
            for worker in self._workers:
                worker.drop_connection()
            self._workers = None
        if self._pool is not None:
            self._pool.stop()
            self._pool = None
            self.workers = ()
        self._payload = None

    def start(self, task: TrialTask) -> None:
        self.open()
        try:
            self._payload = encode_blob(task)
        except (pickle.PicklingError, TypeError, AttributeError):
            # Unpicklable task (ad-hoc closure): exact in-process fallback
            # for this run, connections stay open for the next task.
            self._payload = None

    def finish(self) -> None:
        self._payload = None

    # -- introspection -----------------------------------------------------

    def live_workers(self) -> Tuple[str, ...]:
        """Addresses whose circuit breaker has not opened."""
        if self._workers is None:
            return self.workers
        return tuple(
            worker.address for worker in self._workers if not worker.broken
        )

    # -- span dispatch -----------------------------------------------------

    def _spans(
        self, start: int, stop: int, trials_per_unit: int = 1
    ) -> List[Tuple[int, int]]:
        live = max(1, len(self.live_workers()))
        if self.chunk_size == "auto":
            from repro.backends.autotune import resolved_rate, suggest_chunk_size

            trials = (stop - start) * trials_per_unit
            span = suggest_chunk_size(
                "distributed",
                trials,
                workers=live,
                rate=resolved_rate(self, "distributed"),
            )
            span = max(1, span // trials_per_unit)
        elif self.chunk_size is not None:
            span = self.chunk_size
        else:
            span = max(1, -(-(stop - start) // live))
        return [
            (low, min(low + span, stop)) for low in range(start, stop, span)
        ]

    def _worker_request(
        self, worker: _Worker, payload: Dict[str, Any]
    ) -> Dict[str, Any]:
        """One request on a worker's persistent connection, liveness-checked.

        Reply silence beyond ``heartbeat_interval`` triggers a ``ping``
        probe on a fresh connection: an answering (merely slow) worker is
        waited on indefinitely — or until ``span_timeout`` — while a
        silent one raises :class:`WorkerLost` so the span is requeued.
        """
        waited = 0.0

        def on_idle() -> None:
            nonlocal waited
            waited += self.heartbeat_interval
            if self.span_timeout is not None and waited >= self.span_timeout:
                raise WorkerLost(
                    f"worker {worker.address} exceeded the {self.span_timeout}s "
                    f"span timeout"
                )
            self._count("heartbeat_probes")
            if not worker.probe(self.ping_timeout):
                raise WorkerLost(
                    f"worker {worker.address} stopped answering heartbeat "
                    f"pings after {waited:.1f}s of silence"
                )

        return request(
            worker.sock,
            payload,
            idle_timeout=self.heartbeat_interval,
            on_idle=on_idle,
        )

    def _ensure_ready(self, worker: _Worker) -> None:
        """(Re)connect and load the current task onto the connection."""
        if worker.sock is None:
            worker.connect()
        if self._payload is not None and worker.loaded != self._payload:
            self._worker_request(worker, {"op": "task", "task": self._payload})
            worker.loaded = self._payload

    def _dispatch(
        self, mode: str, spans: List[Tuple[int, int]]
    ) -> List[Any]:
        """Run every span on some live worker; replies in span order.

        Spans flow through one shared queue that live workers pull from;
        transport failures requeue the span (bounded by ``span_retries``)
        and strike the worker (bounded by ``breaker_threshold``), task
        failures abort the dispatch.  Raises only after every driver
        thread has stopped touching its socket.
        """
        assert self._workers is not None
        workers = [worker for worker in self._workers if not worker.broken]
        if not workers:
            raise NoWorkersLeft(
                "every worker's circuit breaker is open; restart workers "
                "and reopen the backend (completed sweep points are in the "
                "store — `repro sweep resume` recomputes nothing)"
            )
        replies: List[Any] = [None] * len(spans)
        queue = _SpanQueue(spans, drivers=len(workers))

        def drive(worker: _Worker) -> None:
            try:
                while True:
                    item = queue.get()
                    if item is None:
                        return
                    span_index, (low, high), attempts = item
                    try:
                        try:
                            self._ensure_ready(worker)
                        except RuntimeError as error:
                            # An ok:false reply to the task *load* is
                            # worker-specific (version skew, a module
                            # missing on that host) — the other workers
                            # may load it fine, so strike this one
                            # rather than abort the dispatch.
                            raise WorkerLost(
                                f"worker {worker.address} cannot load the "
                                f"task: {error}"
                            ) from error
                        reply = self._worker_request(
                            worker,
                            {
                                "op": "run",
                                "mode": mode,
                                "start": low,
                                "stop": high,
                            },
                        )
                    except (ConnectionError, OSError) as error:
                        # Transport failure: strike the worker, requeue
                        # the span for whoever is still alive.
                        worker.drop_connection()
                        worker.strikes += 1
                        self._count("worker_failures")
                        if worker.strikes >= self.breaker_threshold:
                            worker.broken = True
                            self._count("workers_broken")
                        if attempts + 1 >= self.span_retries:
                            queue.abort(
                                NoWorkersLeft(
                                    f"span [{low}, {high}) failed on "
                                    f"{attempts + 1} workers, giving up: "
                                    f"{error}"
                                )
                            )
                            return
                        queue.requeue((span_index, (low, high), attempts + 1))
                        self._count("spans_requeued")
                        if worker.broken:
                            return
                        continue
                    except RuntimeError as error:
                        # An ok:false reply: the task itself failed, and
                        # deterministically would everywhere — abort with
                        # the remote traceback, connection left healthy.
                        queue.abort(error)
                        return
                    except BaseException as error:  # pragma: no cover
                        queue.abort(error)  # surface bugs, don't hang
                        return
                    replies[span_index] = reply
                    worker.strikes = 0
                    worker.spans_completed += 1
                    self._count("spans_completed")
                    queue.task_done()
            finally:
                queue.driver_exited()

        threads = [
            threading.Thread(
                target=drive,
                args=(worker,),
                name=f"repro-dispatch-{worker.address}",
                daemon=True,
            )
            for worker in workers
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        error = queue.error
        if error is not None:
            raise error
        return replies

    def _summed_counts(
        self,
        task: TrialTask,
        mode: str,
        start: int,
        stop: int,
        trials_per_unit: int = 1,
    ) -> List[int]:
        counts = [0] * task.channels
        spans = self._spans(start, stop, trials_per_unit)
        for reply in self._dispatch(mode, spans):
            chunk = reply["counts"]
            if len(chunk) != task.channels:
                raise ValueError(
                    f"worker returned {len(chunk)} channel(s), "
                    f"expected {task.channels}"
                )
            for channel, value in enumerate(chunk):
                counts[channel] += int(value)
        return counts

    # -- the three spans ---------------------------------------------------

    def run_counts(self, task: TrialTask, start: int, stop: int) -> List[int]:
        if self._payload is None:
            return run_count_range(task, start, stop)
        if start >= stop:
            return [0] * task.channels
        return self._summed_counts(task, "counts", start, stop)

    def run_batches(self, task: TrialTask, first: int, last: int) -> List[int]:
        if self._payload is None:
            return run_batch_range(task, first, last)
        if first >= last:
            return [0] * task.channels
        return self._summed_counts(
            task, "batches", first, last, trials_per_unit=max(1, task.batch_size)
        )

    def run_collect(self, task: TrialTask, start: int, stop: int) -> List[Any]:
        if self._payload is None:
            return run_collect_range(task, start, stop)
        if start >= stop:
            return []
        values: List[Any] = []
        for reply in self._dispatch("collect", self._spans(start, stop)):
            values.extend(decode_blob(reply["values"]))
        return values
