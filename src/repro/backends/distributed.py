"""The distributed execution backend: spans over TCP workers.

:class:`DistributedBackend` implements the
:class:`~repro.backends.base.ExecutionBackend` protocol against one or
more ``repro worker serve`` processes (see :mod:`repro.backends.worker`),
reachable as ``host:port`` addresses.  One persistent connection per
worker is opened by :meth:`~DistributedBackend.open` and reused for every
engine run of a sweep — the remote analogue of the one-pool-per-sweep
contract.

Execution model per span call:

1. :meth:`start` pickles the task once and broadcasts it to every
   worker connection (op ``task``); a task that cannot be pickled falls
   back to exact in-process execution for that run, mirroring
   :class:`~repro.experiments.executors.SweepPoolExecutor`.
2. ``run_counts``/``run_batches``/``run_collect`` split their half-open
   range into spans (``chunk_size`` each, default: balanced across
   workers), assign spans round-robin to workers, and drive each
   worker's connection from its own thread.
3. Counts are summed — exact integer addition, associative, so the
   assignment never matters — and collect values are re-assembled in
   span order, preserving trial-index order.

Workers compute spans with the same range functions local executors use,
so results are *identical* to the serial executor for any worker set:
streams keyed by ``(seed, label, index)`` are backend-invariant.  A
worker failure raises immediately; because the sweep orchestrator
persists completed points, ``repro sweep resume`` continues a partially
failed distributed sweep without recomputing anything.
"""

from __future__ import annotations

import socket
import threading
from typing import Any, List, Optional, Sequence, Tuple

from repro.backends.wire import (
    WORKER_ROLE,
    decode_blob,
    encode_blob,
    parse_address,
    request,
)
from repro.experiments.executors import (
    TrialExecutor,
    TrialTask,
    run_batch_range,
    run_collect_range,
    run_count_range,
)
from repro.util.validation import check_positive_int

import pickle


class DistributedBackend(TrialExecutor):
    """Dispatch trial spans to remote ``repro worker`` processes.

    Parameters
    ----------
    workers:
        Non-empty sequence of ``"host:port"`` worker addresses.
    chunk_size:
        Trials (or batches) per dispatched span; default balances the
        range evenly across workers.  Never observable in results.
    connect_timeout:
        Seconds allowed for the TCP connect + hello handshake per
        worker.  Span requests themselves block without a deadline (a
        span legitimately runs for minutes at paper-scale trial
        counts).
    """

    supports_remote = True

    def __init__(
        self,
        workers: Sequence[str],
        chunk_size: Optional[int] = None,
        connect_timeout: float = 10.0,
    ) -> None:
        addresses = [
            worker.strip() for worker in workers if str(worker).strip()
        ]
        if not addresses:
            raise ValueError(
                "DistributedBackend needs at least one worker address "
                "('host:port')"
            )
        self.workers: Tuple[str, ...] = tuple(addresses)
        self._addresses = [parse_address(address) for address in self.workers]
        if chunk_size is not None:
            check_positive_int(chunk_size, "chunk_size")
        self.chunk_size = chunk_size
        self.connect_timeout = connect_timeout
        self._connections: Optional[List[socket.socket]] = None
        self._payload: Optional[str] = None

    # -- lifecycle ---------------------------------------------------------

    def open(self) -> "DistributedBackend":
        """Connect and handshake every worker; idempotent."""
        if self._connections is not None:
            return self
        connections: List[socket.socket] = []
        try:
            for address, (host, port) in zip(self.workers, self._addresses):
                try:
                    connection = socket.create_connection(
                        (host, port), timeout=self.connect_timeout
                    )
                except OSError as error:
                    raise ConnectionError(
                        f"cannot reach worker {address}: {error}"
                    ) from error
                connections.append(connection)
                hello = request(connection, {"op": "hello"})
                if hello.get("role") != WORKER_ROLE:
                    raise ConnectionError(
                        f"{address} is not a repro worker "
                        f"(role {hello.get('role')!r})"
                    )
                # Handshake done: span requests may run arbitrarily long.
                connection.settimeout(None)
        except BaseException:
            for connection in connections:
                connection.close()
            raise
        self._connections = connections
        return self

    def close(self) -> None:
        if self._connections is not None:
            for connection in self._connections:
                connection.close()
            self._connections = None
        self._payload = None

    def start(self, task: TrialTask) -> None:
        self.open()
        try:
            payload = encode_blob(task)
        except (pickle.PicklingError, TypeError, AttributeError):
            # Unpicklable task (ad-hoc closure): exact in-process fallback
            # for this run, connections stay open for the next task.
            self._payload = None
            return
        self._payload = payload
        for connection in self._connections:
            request(connection, {"op": "task", "task": payload})

    def finish(self) -> None:
        self._payload = None

    # -- span dispatch -----------------------------------------------------

    def _spans(self, start: int, stop: int) -> List[Tuple[int, int]]:
        if self.chunk_size is not None:
            span = self.chunk_size
        else:
            span = max(1, -(-(stop - start) // len(self.workers)))
        return [
            (low, min(low + span, stop)) for low in range(start, stop, span)
        ]

    def _dispatch(
        self, mode: str, spans: List[Tuple[int, int]]
    ) -> List[Any]:
        """Run every span on some worker; replies in span order.

        Spans are assigned round-robin; each worker's connection is
        driven serially by its own thread (the protocol is one request
        in flight per connection).  Any failure is re-raised here after
        every thread has stopped touching its socket.
        """
        assert self._connections is not None
        replies: List[Any] = [None] * len(spans)
        errors: List[BaseException] = []

        def drive(connection: socket.socket, assigned) -> None:
            try:
                for span_index, (low, high) in assigned:
                    replies[span_index] = request(
                        connection,
                        {"op": "run", "mode": mode, "start": low, "stop": high},
                    )
            except BaseException as error:  # noqa: BLE001 - re-raised below
                errors.append(error)

        groups: List[List[Tuple[int, Tuple[int, int]]]] = [
            [] for _ in self._connections
        ]
        for span_index, span in enumerate(spans):
            groups[span_index % len(groups)].append((span_index, span))
        threads = [
            threading.Thread(
                target=drive, args=(connection, assigned), daemon=True
            )
            for connection, assigned in zip(self._connections, groups)
            if assigned
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if errors:
            raise errors[0]
        return replies

    def _summed_counts(
        self, task: TrialTask, mode: str, start: int, stop: int
    ) -> List[int]:
        counts = [0] * task.channels
        for reply in self._dispatch(mode, self._spans(start, stop)):
            chunk = reply["counts"]
            if len(chunk) != task.channels:
                raise ValueError(
                    f"worker returned {len(chunk)} channel(s), "
                    f"expected {task.channels}"
                )
            for channel, value in enumerate(chunk):
                counts[channel] += int(value)
        return counts

    # -- the three spans ---------------------------------------------------

    def run_counts(self, task: TrialTask, start: int, stop: int) -> List[int]:
        if self._payload is None:
            return run_count_range(task, start, stop)
        if start >= stop:
            return [0] * task.channels
        return self._summed_counts(task, "counts", start, stop)

    def run_batches(self, task: TrialTask, first: int, last: int) -> List[int]:
        if self._payload is None:
            return run_batch_range(task, first, last)
        if first >= last:
            return [0] * task.channels
        return self._summed_counts(task, "batches", first, last)

    def run_collect(self, task: TrialTask, start: int, stop: int) -> List[Any]:
        if self._payload is None:
            return run_collect_range(task, start, stop)
        if start >= stop:
            return []
        values: List[Any] = []
        for reply in self._dispatch("collect", self._spans(start, stop)):
            values.extend(decode_blob(reply["values"]))
        return values
