"""The distributed execution backend: spans over TCP workers, elastically.

:class:`DistributedBackend` implements the
:class:`~repro.backends.base.ExecutionBackend` protocol against one or
more ``repro worker serve`` processes (see :mod:`repro.backends.worker`),
reachable as ``host:port`` addresses — or spawned on demand as a local
:class:`~repro.backends.pool.WorkerPool` via ``pool=N``.  One persistent
connection per worker is opened by :meth:`~DistributedBackend.open` and
reused for every engine run of a sweep — the remote analogue of the
one-pool-per-sweep contract.

Execution model per span call:

1. :meth:`start` pickles the task once; each worker receives it lazily,
   the first time (per engine run) a span is dispatched on its
   connection — which is also what makes reconnects transparent.  A task
   that cannot be pickled falls back to exact in-process execution for
   that run, mirroring
   :class:`~repro.experiments.executors.SweepPoolExecutor`.
2. ``run_counts``/``run_batches``/``run_collect`` carve their half-open
   range on demand: each live worker's driver thread pulls the next span
   off a shared cursor, sized for *that* worker (``chunk_size`` trials;
   default balances the range across live workers; ``"auto"`` sizes
   spans from the worker's own observed rate, falling back to recorded
   ``BENCH_*.json`` rates — see :mod:`repro.backends.autotune`), so slow
   workers naturally take less and fast ones more.
3. Counts are summed over spans — exact integer addition over per-span
   counts that are pure functions of ``(task, span)``, so *any* disjoint
   partition of the range gives identical totals — and collect values
   are re-assembled in span (trial-index) order.

**Fault tolerance.**  A span dispatch that fails at the transport level
(EOF, refused reconnect, a torn frame, a wire timeout, a heartbeat
declaring the worker dead) *requeues the span* for the surviving
workers, up to ``span_retries`` attempts per span.  Because every span's
counts are a pure function of the task and the span bounds, re-executing
a span — even one the dying worker may have half-finished — produces the
exact same numbers, so results and result-store cache keys stay
**byte-identical** to a clean run; the fault-injection suite
(``tests/backends/test_faults.py``) and the CI ``chaos`` job assert
exactly that.  Per-worker failures are tracked as consecutive *strikes*
(reset by any completed span, and reset again at every engine-run
boundary so one run's blips never poison the next): at
``breaker_threshold`` strikes the circuit breaker opens.  A worker that
stops sending reply bytes for ``heartbeat_interval`` seconds is probed
with a ``ping`` on a fresh connection (see
:func:`~repro.backends.wire.probe_worker`): a *slow* worker answers and
the client keeps waiting; a *dead* one fails the probe and its span is
requeued immediately.

**Elasticity.**  The fleet is no longer frozen at :meth:`open`:

- *Breaker re-admission* — an open breaker is a cooldown, not a death
  sentence.  Each trip schedules an exponentially backed-off cooldown
  (``breaker_cooldown`` doubling per trip, capped at
  ``breaker_cooldown_max``); once it expires, a successful heartbeat
  probe re-admits the worker with reset strikes.  Re-admission probes
  are counted separately (``readmission_probes``) and never as
  ``worker_failures``.
- *Dynamic membership* — with ``announce_bind="host:port"`` the backend
  runs a :class:`~repro.backends.membership.MembershipRegistry`;
  ``repro worker serve --announce HOST:PORT`` joins a *running* sweep,
  and a clean worker shutdown retires itself so the backend drains it
  (finish the in-flight span, take no more) instead of striking it.
  ``watch_hosts=PATH`` watches a ``--workers @FILE``-style hosts file
  for the same events.  New members get a driver thread on the next
  admission sweep and start pulling spans immediately.
- *Pool respawn* — a backend-owned pool (``pool=N``) with
  ``pool_respawns=K`` relaunches up to ``K`` dead children on fresh
  ephemeral ports (without their scripted ``--fault``, so chaos stays
  deterministic) and adopts the new addresses mid-dispatch.
- *Work-stealing* — a requeued span sized for a slower (or dead) worker
  is split when a faster worker picks it up: the thief takes a span
  sized for itself and the remainder goes back on the queue for the
  next idle worker (``spans_split`` in :attr:`stats`).

Only when every avenue is exhausted — all workers dead or cooling down,
nothing to respawn, nobody announcing — does the dispatch raise
(:class:`NoWorkersLeft`); and because the sweep orchestrator persists
completed points, ``repro sweep resume`` continues even that sweep
without recomputing anything.

Worker-side *task* errors (an ``ok: false`` reply) are deterministic —
the same span would fail identically on every worker — so they abort the
dispatch immediately with the remote traceback, exactly as before.
"""

from __future__ import annotations

import pickle
import socket
import threading
import time
from collections import deque
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.backends.wire import (
    WORKER_ROLE,
    ProtocolError,
    cancel_worker,
    decode_blob,
    encode_blob,
    fetch_worker_stats,
    parse_address,
    probe_worker,
    request,
)
from repro.experiments.executors import (
    TrialExecutor,
    TrialTask,
    run_batch_range,
    run_collect_range,
    run_count_range,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import NULL_TRACER
from repro.util.validation import check_positive_int

#: Re-dispatch attempts allowed per span before the run is declared failed.
DEFAULT_SPAN_RETRIES = 5

#: Consecutive failures that open a worker's circuit breaker.
DEFAULT_BREAKER_THRESHOLD = 3

#: Seconds of reply silence before a heartbeat probe checks the worker.
DEFAULT_HEARTBEAT_INTERVAL = 5.0

#: Seconds a heartbeat probe may take before counting as dead.
DEFAULT_PING_TIMEOUT = 2.0

#: Base cooldown after a breaker trips (doubles per consecutive trip).
#: Long enough that the fast chaos tests never re-admit by accident,
#: short enough that a restarted worker rejoins a real sweep promptly.
DEFAULT_BREAKER_COOLDOWN = 5.0

#: Cap on the exponential breaker cooldown.
DEFAULT_BREAKER_COOLDOWN_MAX = 60.0

#: How often a running dispatch sweeps for membership changes (announce
#: registry, hosts file, pool respawns, cooldown expiries).  Span
#: completion wakes the sweep early, so this adds no happy-path latency.
DEFAULT_MEMBERSHIP_INTERVAL = 0.25

#: Every fault/elasticity counter the backend keeps, registered at zero
#: so :attr:`DistributedBackend.stats` always carries the full key set.
STAT_NAMES = (
    "spans_completed",
    "spans_requeued",
    "spans_split",
    "spans_cancelled",
    "worker_failures",
    "workers_broken",
    "workers_readmitted",
    "workers_joined",
    "workers_left",
    "workers_respawned",
    "heartbeat_probes",
    "readmission_probes",
)

#: Counter → typed trace event: every fault/membership increment that
#: deserves a timestamped point in the trace (probes and completions are
#: volume, not incident — the span records already carry them).
_STAT_EVENTS = {
    "spans_requeued": "requeue",
    "spans_split": "steal",
    "spans_cancelled": "cancel",
    "worker_failures": "worker_failure",
    "workers_broken": "breaker_trip",
    "workers_readmitted": "readmit",
    "workers_joined": "join",
    "workers_left": "leave",
    "workers_respawned": "respawn",
}


class WorkerLost(ConnectionError):
    """A worker stopped responding mid-span (heartbeat or hard timeout)."""


class NoWorkersLeft(ConnectionError):
    """Every worker is dead or circuit-broken with spans still pending."""


class PointDeadlineExceeded(RuntimeError):
    """A sweep point blew its wall-clock budget (driver watchdog).

    Raised *into* a dispatch via :meth:`DistributedBackend.cancel_active`
    — the orchestrator's per-point watchdog fires it, busy workers are
    told to abandon their spans, and the orchestrator's degradation
    ladder decides whether the point reruns locally or the sweep aborts.
    """


class _Worker:
    """Client-side state of one worker: connection, breaker, rate."""

    def __init__(
        self, address: str, connect_timeout: float, origin: str = "static"
    ) -> None:
        self.address = address
        self.host, self.port = parse_address(address)
        self.connect_timeout = connect_timeout
        #: How this worker entered the fleet: ``static`` (given at
        #: construction), ``announce``, ``hosts``, or ``respawn``.
        self.origin = origin
        self.sock: Optional[socket.socket] = None
        #: The task payload loaded on the current connection, if any.
        self.loaded: Optional[str] = None
        #: Consecutive transport failures; any completed span resets it,
        #: as does every engine-run boundary (:meth:`DistributedBackend.start`).
        self.strikes = 0
        #: Circuit breaker: open means "cooling down", not "out for good" —
        #: after :attr:`cooldown_until` a successful probe re-admits.
        self.broken = False
        #: Departing cleanly (retired via the registry / removed from the
        #: hosts file): finish nothing new, never probe, never strike.
        self.draining = False
        self.breaker_trips = 0
        self.cooldown_until = 0.0
        self.readmissions = 0
        self.spans_completed = 0
        #: Observed throughput accounting for per-worker span sizing.
        self.trials_done = 0
        self.busy_seconds = 0.0

    def connect(self) -> None:
        try:
            sock = socket.create_connection(
                (self.host, self.port), timeout=self.connect_timeout
            )
        except OSError as error:
            raise ConnectionError(
                f"cannot reach worker {self.address}: {error}"
            ) from error
        try:
            hello = request(sock, {"op": "hello"})
            if hello.get("role") != WORKER_ROLE:
                raise ConnectionError(
                    f"{self.address} is not a repro worker "
                    f"(role {hello.get('role')!r})"
                )
        except BaseException:
            sock.close()
            raise
        # Handshake done: span requests may run arbitrarily long (the
        # idle/heartbeat machinery bounds them, not the socket timeout).
        sock.settimeout(None)
        self.sock = sock
        self.loaded = None

    def drop_connection(self) -> None:
        if self.sock is not None:
            try:
                self.sock.close()
            except OSError:  # pragma: no cover - close on a dead socket
                pass
            self.sock = None
        self.loaded = None

    def probe(self, ping_timeout: float) -> bool:
        return probe_worker(self.host, self.port, timeout=ping_timeout)

    # -- breaker lifecycle -------------------------------------------------

    def schedule_cooldown(self, base: float, cap: float) -> None:
        """Start (or extend, doubling) this worker's breaker cooldown."""
        self.breaker_trips += 1
        backoff = min(base * (2 ** (self.breaker_trips - 1)), cap)
        self.cooldown_until = time.monotonic() + backoff

    def trip_breaker(self, base: float, cap: float) -> None:
        self.broken = True
        self.schedule_cooldown(base, cap)

    def readmit(self) -> None:
        """Close the breaker: fresh strikes, fresh connection next span."""
        self.broken = False
        self.draining = False
        self.strikes = 0
        self.readmissions += 1
        self.drop_connection()

    # -- observed throughput ----------------------------------------------

    def record_span(self, trials: int, elapsed: float) -> None:
        self.trials_done += max(0, trials)
        self.busy_seconds += max(0.0, elapsed)

    def observed_rate(self) -> Optional[float]:
        """Trials/second this worker has demonstrated (``None`` if unknown)."""
        if self.trials_done <= 0 or self.busy_seconds < 1e-9:
            return None
        return self.trials_done / self.busy_seconds


class _SpanSource:
    """The demand-carved span supply one dispatch's drivers pull from.

    Instead of a precomputed partition, spans are carved off a shared
    cursor *when a worker asks*, sized by ``sizer(worker)`` — which is
    what lets span sizes track per-worker observed rates.  Failed spans
    re-enter a requeue deque as ``(low, high, attempts)``; a requeued
    span much larger than the asking worker's target size is *split*
    (the work-stealing half: the thief takes its own-sized piece, the
    remainder stays queued for the next idle worker).  Any disjoint
    partition of the range yields identical totals — per-span counts are
    pure functions of ``(task, span)`` — so demand carving and splitting
    are invisible in results.

    Drivers come and go (elastic membership), so exhaustion is *not*
    decided here: :meth:`get` simply returns ``None`` for a broken or
    draining worker, and the dispatch controller — which can admit new
    members and re-admit cooled-down ones — owns the only abort.
    """

    def __init__(
        self,
        start: int,
        stop: int,
        sizer: Callable[[_Worker], int],
        on_split: Optional[Callable[[], None]] = None,
    ) -> None:
        self._cursor = start
        self._stop = stop
        self._sizer = sizer
        self._on_split = on_split
        self._requeued: deque = deque()
        self._active = 0
        self._drivers = 0
        self._error: Optional[BaseException] = None
        self._condition = threading.Condition()

    @property
    def error(self) -> Optional[BaseException]:
        with self._condition:
            return self._error

    @property
    def drivers(self) -> int:
        with self._condition:
            return self._drivers

    def _settled_locked(self) -> bool:
        return self._error is not None or (
            self._cursor >= self._stop
            and not self._requeued
            and self._active == 0
        )

    @property
    def settled(self) -> bool:
        """Finished or aborted: no span will ever be handed out again."""
        with self._condition:
            return self._settled_locked()

    def get(self, worker: _Worker) -> Optional[Tuple[int, int, int]]:
        """The next span for ``worker`` as ``(low, high, attempts)``.

        ``None`` means this driver is done: the dispatch settled, or the
        worker itself is out (broken/draining).  Blocks — waking
        periodically to re-check the worker's standing — while other
        drivers hold spans that may yet be requeued.
        """
        with self._condition:
            while True:
                if self._settled_locked():
                    return None
                if worker.broken or worker.draining:
                    return None
                size = max(1, int(self._sizer(worker)))
                if self._requeued:
                    low, high, attempts = self._requeued.popleft()
                    if high - low >= 2 * size:
                        # Steal-split: take an own-sized bite, leave the
                        # rest for the next idle worker.
                        self._requeued.append((low + size, high, attempts))
                        if self._on_split is not None:
                            self._on_split()
                        high = low + size
                    self._active += 1
                    return low, high, attempts
                if self._cursor < self._stop:
                    low = self._cursor
                    high = min(low + size, self._stop)
                    self._cursor = high
                    self._active += 1
                    return low, high, 0
                self._condition.wait(0.05)

    def complete(self) -> None:
        with self._condition:
            self._active -= 1
            self._condition.notify_all()

    def requeue(self, low: int, high: int, attempts: int) -> None:
        with self._condition:
            self._active -= 1
            self._requeued.append((low, high, attempts))
            self._condition.notify_all()

    def abort(self, error: BaseException) -> None:
        """Fail the dispatch — unless it already settled.

        The settled guard matters for *external* aborts (the driver
        watchdog racing a completing point): once every span is done the
        dispatch's result is committed, and a late cancel must not turn
        a finished point into a failure.  Internal callers are unaffected
        — a driver aborting over its own failed span still holds that
        span active, so the source cannot have settled under it.
        """
        with self._condition:
            if self._error is None and not self._settled_locked():
                self._error = error
            self._condition.notify_all()

    def add_driver(self) -> None:
        with self._condition:
            self._drivers += 1

    def driver_exited(self) -> None:
        with self._condition:
            self._drivers -= 1
            self._condition.notify_all()

    def wait(self, timeout: float) -> None:
        """Park the dispatch controller until progress or ``timeout``."""
        with self._condition:
            if not self._settled_locked():
                self._condition.wait(timeout)


class DistributedBackend(TrialExecutor):
    """Dispatch trial spans to remote ``repro worker`` processes.

    Parameters
    ----------
    workers:
        Sequence of ``"host:port"`` worker addresses.  May be empty when
        ``pool`` is given.
    chunk_size:
        Trials (batches, in batch mode) per dispatched span.  ``None``
        balances the range across live workers; ``"auto"`` sizes each
        worker's spans from its own observed rate, seeded by recorded
        benchmark rates (:mod:`repro.backends.autotune`), targeting
        sub-second spans so retry/rebalancing stays granular.  Never
        observable in results.
    connect_timeout:
        Seconds allowed for TCP connect + hello handshake per worker.
    pool:
        Spawn a local :class:`~repro.backends.pool.WorkerPool` of this
        many ``repro worker serve`` processes in :meth:`open` and own
        its lifecycle — sweeps and tests stand up a pool in one call.
    span_retries:
        Re-dispatch attempts allowed per span before the run fails.
    breaker_threshold:
        Consecutive failures that open a worker's circuit breaker.
    heartbeat_interval:
        Seconds of reply silence before a liveness probe; slow workers
        answer the probe and are waited on, dead ones are requeued.
    ping_timeout:
        Deadline for each heartbeat probe.
    span_timeout:
        Optional hard cap on one span's wall time; on expiry the worker
        is treated as lost even if its heartbeat still answers.  ``None``
        (default) trusts the heartbeat alone.
    breaker_cooldown:
        Base seconds an open breaker cools down before a re-admission
        probe; doubles on every consecutive trip.
    breaker_cooldown_max:
        Cap on the exponential breaker cooldown.
    membership_interval:
        Seconds between membership sweeps during a dispatch.
    announce_bind:
        ``"host:port"`` to run a
        :class:`~repro.backends.membership.MembershipRegistry` on (port
        0 binds ephemeral; see :attr:`registry_address`).  Workers
        started with ``repro worker serve --announce`` join through it.
    watch_hosts:
        Path to a ``host:port``-per-line file to watch for membership
        edits (the ``--workers @FILE`` file, typically).
    pool_faults:
        :class:`~repro.backends.faults.FaultPlan` (or compact string)
        for a backend-owned pool — how chaos tests script a real
        worker-process death under ``pool=N``.
    pool_respawns:
        Dead backend-owned pool children to relaunch (total budget, 0
        disables).  Respawned children carry no scripted fault.
    """

    supports_remote = True
    supports_fault_tolerance = True
    supports_elastic_membership = True
    #: An in-flight dispatch can be aborted from another thread
    #: (:meth:`cancel_active`) and busy workers told to abandon their
    #: spans mid-flight — what the orchestrator's point watchdog needs.
    supports_cancellation = True

    def __init__(
        self,
        workers: Sequence[str] = (),
        chunk_size: Union[int, str, None] = None,
        connect_timeout: float = 10.0,
        pool: Optional[int] = None,
        span_retries: int = DEFAULT_SPAN_RETRIES,
        breaker_threshold: int = DEFAULT_BREAKER_THRESHOLD,
        heartbeat_interval: float = DEFAULT_HEARTBEAT_INTERVAL,
        ping_timeout: float = DEFAULT_PING_TIMEOUT,
        span_timeout: Optional[float] = None,
        breaker_cooldown: float = DEFAULT_BREAKER_COOLDOWN,
        breaker_cooldown_max: float = DEFAULT_BREAKER_COOLDOWN_MAX,
        membership_interval: float = DEFAULT_MEMBERSHIP_INTERVAL,
        announce_bind: Optional[str] = None,
        watch_hosts: Optional[Any] = None,
        pool_faults: Optional[Any] = None,
        pool_respawns: int = 0,
    ) -> None:
        addresses = [
            worker.strip() for worker in workers if str(worker).strip()
        ]
        if pool is not None:
            check_positive_int(pool, "pool")
            if addresses:
                # Refusing beats silently ignoring one of them: an
                # operator who names a fleet AND asks for a pool would
                # otherwise run on fewer workers than they believe.
                raise ValueError(
                    "pass either workers=[...] or pool=N, not both"
                )
        if not addresses and pool is None:
            raise ValueError(
                "DistributedBackend needs at least one worker address "
                "('host:port') or pool=N to spawn a local worker pool"
            )
        self.workers: Tuple[str, ...] = tuple(addresses)
        for address in self.workers:
            parse_address(address)  # fail fast on typos
        if chunk_size not in (None, "auto"):
            check_positive_int(chunk_size, "chunk_size")
        self.chunk_size = chunk_size
        self.connect_timeout = connect_timeout
        self.pool_size = pool
        self.span_retries = check_positive_int(span_retries, "span_retries")
        self.breaker_threshold = check_positive_int(
            breaker_threshold, "breaker_threshold"
        )
        self.heartbeat_interval = heartbeat_interval
        self.ping_timeout = ping_timeout
        self.span_timeout = span_timeout
        if breaker_cooldown <= 0:
            raise ValueError(
                f"breaker_cooldown must be > 0, got {breaker_cooldown!r}"
            )
        self.breaker_cooldown = float(breaker_cooldown)
        self.breaker_cooldown_max = max(
            float(breaker_cooldown), float(breaker_cooldown_max)
        )
        if membership_interval <= 0:
            raise ValueError(
                f"membership_interval must be > 0, got {membership_interval!r}"
            )
        self.membership_interval = float(membership_interval)
        if announce_bind is not None:
            parse_address(announce_bind)  # fail fast; port 0 is fine
        self.announce_bind = announce_bind
        self.watch_hosts = watch_hosts
        if not isinstance(pool_respawns, int) or isinstance(
            pool_respawns, bool
        ) or pool_respawns < 0:
            raise ValueError(
                f"pool_respawns must be a non-negative int, got {pool_respawns!r}"
            )
        if (pool_faults is not None or pool_respawns) and pool is None:
            raise ValueError(
                "pool_faults/pool_respawns only apply to a backend-owned "
                "pool (pass pool=N)"
            )
        self.pool_faults = pool_faults
        self.pool_respawns = pool_respawns
        self._pool: Optional[Any] = None
        self._registry: Optional[Any] = None
        self._watcher: Optional[Any] = None
        self._workers: Optional[List[_Worker]] = None
        self._membership_lock = threading.Lock()
        self._payload: Optional[str] = None
        #: The span source of the dispatch currently in flight, if any —
        #: what :meth:`cancel_active` aborts from watchdog threads.
        self._active_source: Optional[_SpanSource] = None
        #: The numeric half of this backend's telemetry.  Fault counters
        #: live under ``backend.*`` (pre-registered at zero so the
        #: :attr:`stats` view always carries the full key set); worker
        #: snapshots merge in under ``worker.<address>.*`` at close.
        self.metrics = MetricsRegistry()
        self._stat_counters = {
            stat: self.metrics.counter(f"backend.{stat}")
            for stat in STAT_NAMES
        }
        #: Set by the sweep orchestrator so dispatch spans and
        #: fault/membership events join the sweep's trace tree.  A pure
        #: side channel: results are byte-identical with or without it.
        self.tracer: Any = NULL_TRACER
        #: Per-address registry snapshots fetched over the ``stats`` wire
        #: op by the most recent :meth:`close`.
        self.last_worker_stats: Dict[str, Dict[str, Any]] = {}

    @property
    def stats(self) -> Dict[str, int]:
        """The fault/elasticity counters as a plain short-keyed dict.

        A *view* over :attr:`metrics` (the ``backend.*`` counters with
        the prefix stripped), so the dict consumers have always read —
        ``stats["spans_requeued"]`` and friends — keeps working while
        the registry remains the single source of truth.
        """
        return self.metrics.counter_values("backend.", strip=True)

    def _count(self, stat: str, amount: int = 1, **attrs: Any) -> None:
        """Bump one fault/elasticity counter, tracing it when typed.

        ``attrs`` ride on the trace event only (worker address, span
        bounds, ...) — the counter itself stays a bare int.
        """
        self._stat_counters[stat].inc(amount)
        event = _STAT_EVENTS.get(stat)
        if event is not None and self.tracer.enabled:
            self.tracer.event(event, **attrs)

    # -- lifecycle ---------------------------------------------------------

    def open(self) -> "DistributedBackend":
        """Connect and handshake every worker; idempotent.

        Unreachable workers fail *loudly* here — at open time a bad
        address is an operator mistake, not churn; fault tolerance
        begins once the sweep is running.  The elastic machinery (the
        announce registry, the hosts watcher) also comes up here.
        """
        if self._workers is not None:
            return self
        if self.pool_size is not None:
            from repro.backends.pool import WorkerPool

            self._pool = WorkerPool(
                workers=self.pool_size,
                fault_plan=self.pool_faults,
                max_respawns=self.pool_respawns,
            ).start()
            self.workers = tuple(self._pool.addresses)
        workers = [
            _Worker(address, self.connect_timeout) for address in self.workers
        ]
        try:
            for worker in workers:
                worker.connect()
        except BaseException:
            for worker in workers:
                worker.drop_connection()
            if self._pool is not None:
                self._pool.stop()
                self._pool = None
            raise
        self._workers = workers
        if self.announce_bind is not None:
            from repro.backends.membership import MembershipRegistry

            host, port = parse_address(self.announce_bind)
            self._registry = MembershipRegistry(
                host, port, ping_timeout=self.ping_timeout
            ).start()
        if self.watch_hosts is not None:
            from repro.backends.membership import HostsFileWatcher

            self._watcher = HostsFileWatcher(
                self.watch_hosts, initial=self.workers
            )
        return self

    def close(self) -> None:
        self._collect_worker_stats()
        self._record_observed_rates()
        if self._registry is not None:
            self._registry.stop()
            self._registry = None
        self._watcher = None
        if self._workers is not None:
            for worker in self._workers:
                worker.drop_connection()
            self._workers = None
        if self._pool is not None:
            self._pool.stop()
            self._pool = None
            self.workers = ()
        self._payload = None

    def start(self, task: TrialTask) -> None:
        self.open()
        # Per-run state: strikes are *consecutive* failures within a run;
        # carrying them across engine runs let a transient blip in sweep A
        # permanently break the worker early in sweep B.
        for worker in self._workers or ():
            if not worker.broken:
                worker.strikes = 0
        # A run boundary is also a natural admission point: adopt joins,
        # drains, respawns, and any cooled-down breakers before spans fly.
        self._admit_members()
        try:
            self._payload = encode_blob(task)
        except (pickle.PicklingError, TypeError, AttributeError):
            # Unpicklable task (ad-hoc closure): exact in-process fallback
            # for this run, connections stay open for the next task.
            self._payload = None

    def finish(self) -> None:
        self._payload = None

    # -- introspection -----------------------------------------------------

    def live_workers(self) -> Tuple[str, ...]:
        """Addresses currently pulling spans (not broken, not draining)."""
        with self._membership_lock:
            if self._workers is None:
                return self.workers
            return tuple(
                worker.address
                for worker in self._workers
                if not worker.broken and not worker.draining
            )

    @property
    def registry_address(self) -> Optional[str]:
        """The announce registry's bound ``host:port`` (``None`` if off)."""
        if self._registry is None:
            return None
        host, port = self._registry.address
        return f"{host}:{port}"

    def worker_rates(self) -> Dict[str, float]:
        """Observed trials/second per worker address (measured ones only)."""
        with self._membership_lock:
            workers = list(self._workers or ())
        rates: Dict[str, float] = {}
        for worker in workers:
            rate = worker.observed_rate()
            if rate is not None:
                rates[worker.address] = rate
        return rates

    def _record_observed_rates(self) -> None:
        """Feed per-worker observed rates back into the autotune records.

        Only when autotuning was actually in play (``chunk_size="auto"``):
        a fixed-chunk run's rates are equally valid, but an operator who
        never opted into autotuning should not find benchmark artifacts
        appearing in their working directory.
        """
        if self.chunk_size != "auto" or self._workers is None:
            return
        rates = self.worker_rates()
        if not rates:
            return
        from repro.backends.autotune import record_observed_rates

        record_observed_rates("distributed", rates)

    def _collect_worker_stats(self) -> None:
        """Pull every live worker's telemetry and merge it into ours.

        Runs at close, over fresh short-lived connections (the
        persistent sockets may be mid-teardown), bounded by
        ``ping_timeout`` per worker.  Failures — dead worker, a worker
        predating the ``stats`` op — just skip that worker: telemetry
        must never be able to fail a sweep that already finished.
        """
        with self._membership_lock:
            workers = list(self._workers or ())
        for worker in workers:
            if worker.broken or worker.draining:
                continue
            snapshot = fetch_worker_stats(
                worker.host, worker.port, timeout=self.ping_timeout
            )
            if snapshot is None:
                continue
            self.last_worker_stats[worker.address] = snapshot
            self.metrics.merge(snapshot, prefix=f"worker.{worker.address}.")
            if self.tracer.enabled:
                counters = snapshot.get("counters") or {}
                self.tracer.event(
                    "worker_stats", worker=worker.address, **counters
                )

    # -- membership --------------------------------------------------------

    def _admit_members(self, force: bool = False) -> None:
        """One membership sweep: respawns, announces, drains, re-admissions.

        ``force`` ignores breaker cooldowns — the dispatch controller's
        last resort before declaring :class:`NoWorkersLeft`.
        """
        if self._workers is None:
            return
        with self._membership_lock:
            by_address = {worker.address: worker for worker in self._workers}
            joined: List[str] = []
            left: List[str] = []
            if (
                self._pool is not None
                and self.pool_respawns
                and self._pool.local
            ):
                for old_address, new_address in self._pool.respawn_dead():
                    replaced = by_address.get(old_address)
                    if replaced is not None:
                        replaced.draining = True
                    if new_address not in by_address:
                        worker = _Worker(
                            new_address, self.connect_timeout, origin="respawn"
                        )
                        self._workers.append(worker)
                        by_address[new_address] = worker
                        self._count(
                            "workers_respawned",
                            worker=new_address,
                            replaced=old_address,
                        )
            if self._registry is not None:
                registry_joined, registry_left = self._registry.poll()
                joined += registry_joined
                left += registry_left
            if self._watcher is not None:
                watcher_joined, watcher_left = self._watcher.poll()
                joined += watcher_joined
                left += watcher_left
            for address in joined:
                worker = by_address.get(address)
                if worker is None:
                    try:
                        worker = _Worker(
                            address, self.connect_timeout, origin="announce"
                        )
                    except ValueError:  # pragma: no cover - registry validates
                        continue
                    self._workers.append(worker)
                    by_address[address] = worker
                    self._count("workers_joined", worker=address)
                elif worker.broken or worker.draining:
                    # A known address announcing again is a restart: treat
                    # it as the re-admission it is.
                    worker.readmit()
                    self._count(
                        "workers_readmitted", worker=address, via="announce"
                    )
            for address in left:
                worker = by_address.get(address)
                if worker is not None and not worker.draining:
                    worker.draining = True
                    self._count("workers_left", worker=address)
                    # Mid-span drain: a retiring worker abandons its
                    # running span *now* (it requeues elsewhere) instead
                    # of the drain waiting for the span to finish.
                    self._cancel_worker_spans(worker)
            now = time.monotonic()
            for worker in self._workers:
                if not worker.broken or worker.draining:
                    continue
                if not force and now < worker.cooldown_until:
                    continue
                # A re-admission probe is diagnostic, not a failure: it
                # must never count toward worker_failures.
                self._count("readmission_probes")
                if worker.probe(self.ping_timeout):
                    worker.readmit()
                    self._count(
                        "workers_readmitted",
                        worker=worker.address,
                        via="probe",
                    )
                else:
                    worker.schedule_cooldown(
                        self.breaker_cooldown, self.breaker_cooldown_max
                    )

    def _dispatchable_workers(self) -> List[_Worker]:
        with self._membership_lock:
            return [
                worker
                for worker in self._workers or ()
                if not worker.broken and not worker.draining
            ]

    # -- cancellation ------------------------------------------------------

    def _cancel_worker_spans(self, worker: _Worker) -> None:
        """Best-effort: tell one worker to abandon its in-flight spans.

        Fire-and-forget on a fresh short-lived connection (the
        persistent one is busy carrying the very span being cancelled).
        Failure is fine — a worker that cannot be reached is dead or
        deaf, and either way its span requeues through the normal fault
        path.  Workers predating the ``cancel`` op ignore it the same
        way: the drain then waits for the span, exactly the old
        behaviour.
        """
        cancel_worker(worker.host, worker.port, timeout=self.ping_timeout)

    def cancel_active(self, error: BaseException) -> bool:
        """Abort the in-flight dispatch (if any) from another thread.

        The driver watchdog's entry point: aborts the active span source
        with ``error`` — a no-op if the dispatch already settled, so a
        cancel racing a completing point cannot fail it — then tells
        every dispatchable worker to abandon its running span, so the
        abort takes effect mid-span rather than after the slowest worker
        finishes.  Returns whether there was a live dispatch to cancel.
        """
        source = self._active_source
        if source is None or source.settled:
            return False
        source.abort(error)
        for worker in self._dispatchable_workers():
            self._cancel_worker_spans(worker)
        return True

    # -- span dispatch -----------------------------------------------------

    def _make_sizer(
        self, start: int, stop: int, trials_per_unit: int
    ) -> Callable[[_Worker], int]:
        """Per-worker span sizing (in range *units*) for one dispatch."""
        total_units = stop - start
        if isinstance(self.chunk_size, int):
            size = self.chunk_size
            return lambda worker: size
        if self.chunk_size is None:
            live = max(1, len(self.live_workers()))
            size = max(1, -(-total_units // live))
            return lambda worker: size
        # "auto": each worker's demonstrated rate sizes its own spans —
        # slow workers get small spans (cheap to requeue or steal), fast
        # ones get spans near the target wall time.
        from repro.backends.autotune import resolved_rate, suggest_chunk_size

        total_trials = total_units * trials_per_unit
        fallback_rate = resolved_rate(self, "distributed")

        def sizer(worker: _Worker) -> int:
            live = max(1, len(self.live_workers()))
            rate = worker.observed_rate() or fallback_rate
            trials = suggest_chunk_size(
                "distributed", total_trials, workers=live, rate=rate
            )
            return max(1, trials // trials_per_unit)

        return sizer

    def _worker_request(
        self, worker: _Worker, payload: Dict[str, Any]
    ) -> Dict[str, Any]:
        """One request on a worker's persistent connection, liveness-checked.

        Reply silence beyond ``heartbeat_interval`` triggers a ``ping``
        probe on a fresh connection: an answering (merely slow) worker is
        waited on indefinitely — or until ``span_timeout`` — while a
        silent one raises :class:`WorkerLost` so the span is requeued.
        """
        waited = 0.0

        def on_idle() -> None:
            nonlocal waited
            waited += self.heartbeat_interval
            if self.span_timeout is not None and waited >= self.span_timeout:
                # The worker is (probably) alive but over budget: tell it
                # to abandon the span before we write it off, so it stops
                # burning CPU on work that is about to be requeued.
                self._cancel_worker_spans(worker)
                raise WorkerLost(
                    f"worker {worker.address} exceeded the {self.span_timeout}s "
                    f"span timeout"
                )
            self._count("heartbeat_probes")
            if not worker.probe(self.ping_timeout):
                raise WorkerLost(
                    f"worker {worker.address} stopped answering heartbeat "
                    f"pings after {waited:.1f}s of silence"
                )

        return request(
            worker.sock,
            payload,
            idle_timeout=self.heartbeat_interval,
            on_idle=on_idle,
        )

    def _ensure_ready(self, worker: _Worker) -> None:
        """(Re)connect and load the current task onto the connection."""
        if worker.sock is None:
            worker.connect()
        if self._payload is not None and worker.loaded != self._payload:
            self._worker_request(worker, {"op": "task", "task": self._payload})
            worker.loaded = self._payload

    def _dispatch(
        self, mode: str, start: int, stop: int, trials_per_unit: int = 1
    ) -> List[Any]:
        """Run the whole range on the live fleet; replies in span order.

        Each live worker gets a driver thread pulling demand-carved spans
        off one shared :class:`_SpanSource`; transport failures requeue
        the span (bounded by ``span_retries``) and strike the worker
        (breaker at ``breaker_threshold``), task failures abort the
        dispatch.  Between spans the controller thread sweeps membership —
        admitting announced workers, adopting respawned pool children,
        re-admitting cooled-down breakers — and spawns drivers for every
        newcomer, so the fleet flexes *while the range is running*.
        Raises only after every driver thread has stopped touching its
        socket.
        """
        assert self._workers is not None
        sizer = self._make_sizer(start, stop, trials_per_unit)
        source = _SpanSource(
            start, stop, sizer, on_split=lambda: self._count("spans_split")
        )
        self._active_source = source
        results: List[Tuple[int, Any]] = []
        results_lock = threading.Lock()
        # Opened (and closed) by the controller thread; driver threads
        # parent their per-span records on it explicitly, since they
        # never see the controller's thread-local stack.
        dispatch_context = self.tracer.span(
            "backend.dispatch", mode=mode, start=start, stop=stop
        )

        def drive(worker: _Worker, dispatch_span: Any) -> None:
            try:
                while True:
                    item = source.get(worker)
                    if item is None:
                        return
                    low, high, attempts = item
                    try:
                        with self.tracer.span(
                            "backend.span",
                            parent=dispatch_span,
                            worker=worker.address,
                            mode=mode,
                            low=low,
                            high=high,
                            attempt=attempts,
                        ):
                            try:
                                self._ensure_ready(worker)
                            except RuntimeError as error:
                                # An ok:false reply to the task *load* is
                                # worker-specific (version skew, a module
                                # missing on that host) — the other workers
                                # may load it fine, so strike this one
                                # rather than abort the dispatch.
                                raise WorkerLost(
                                    f"worker {worker.address} cannot load the "
                                    f"task: {error}"
                                ) from error
                            began = time.monotonic()
                            reply = self._worker_request(
                                worker,
                                {
                                    "op": "run",
                                    "mode": mode,
                                    "start": low,
                                    "stop": high,
                                },
                            )
                    except (ConnectionError, OSError) as error:
                        # Transport failure: strike the worker, requeue
                        # the span for whoever is still alive.
                        worker.drop_connection()
                        worker.strikes += 1
                        self._count(
                            "worker_failures",
                            worker=worker.address,
                            low=low,
                            high=high,
                            error=type(error).__name__,
                        )
                        if (
                            worker.strikes >= self.breaker_threshold
                            and not worker.broken
                        ):
                            worker.trip_breaker(
                                self.breaker_cooldown,
                                self.breaker_cooldown_max,
                            )
                            self._count(
                                "workers_broken",
                                worker=worker.address,
                                trips=worker.breaker_trips,
                            )
                        if attempts + 1 >= self.span_retries:
                            source.abort(
                                NoWorkersLeft(
                                    f"span [{low}, {high}) failed on "
                                    f"{attempts + 1} workers, giving up: "
                                    f"{error}"
                                )
                            )
                            return
                        source.requeue(low, high, attempts + 1)
                        self._count(
                            "spans_requeued",
                            worker=worker.address,
                            low=low,
                            high=high,
                            attempt=attempts + 1,
                        )
                        if worker.broken:
                            return
                        continue
                    except RuntimeError as error:
                        # An ok:false reply: the task itself failed, and
                        # deterministically would everywhere — abort with
                        # the remote traceback, connection left healthy.
                        source.abort(error)
                        return
                    except BaseException as error:  # pragma: no cover
                        source.abort(error)  # surface bugs, don't hang
                        return
                    if reply.get("cancelled"):
                        # The worker cooperatively abandoned the span
                        # (drain or deadline cancel).  Not a failure: no
                        # strike, and the attempt count stays — the span
                        # simply goes back for whoever still pulls.
                        source.requeue(low, high, attempts)
                        self._count(
                            "spans_cancelled",
                            worker=worker.address,
                            low=low,
                            high=high,
                        )
                        continue
                    with results_lock:
                        results.append((low, reply))
                    worker.strikes = 0
                    worker.spans_completed += 1
                    worker.record_span(
                        (high - low) * trials_per_unit,
                        time.monotonic() - began,
                    )
                    self._count("spans_completed")
                    source.complete()
            finally:
                source.driver_exited()

        try:
            return self._run_dispatch(
                source, results, results_lock, dispatch_context, drive
            )
        finally:
            self._active_source = None

    def _run_dispatch(
        self,
        source: _SpanSource,
        results: List[Tuple[int, Any]],
        results_lock: threading.Lock,
        dispatch_context: Any,
        drive: Callable[[_Worker, Any], None],
    ) -> List[Any]:
        """The controller half of :meth:`_dispatch` (split for cleanup)."""
        with dispatch_context as dispatch_span:
            threads: Dict[str, threading.Thread] = {}
            all_threads: List[threading.Thread] = []

            def spawn_drivers() -> bool:
                spawned = False
                for worker in self._dispatchable_workers():
                    existing = threads.get(worker.address)
                    if existing is not None and existing.is_alive():
                        continue
                    source.add_driver()
                    thread = threading.Thread(
                        target=drive,
                        args=(worker, dispatch_span),
                        name=f"repro-dispatch-{worker.address}",
                        daemon=True,
                    )
                    threads[worker.address] = thread
                    all_threads.append(thread)
                    thread.start()
                    spawned = True
                return spawned

            spawn_drivers()
            if source.drivers == 0:
                # Nobody to even begin with: give the elastic paths one shot
                # (cooldown overridden) before refusing the dispatch.
                self._admit_members(force=True)
                if not spawn_drivers():
                    raise NoWorkersLeft(
                        "every worker is dead or circuit-broken; restart "
                        "workers (or join replacements via --announce) and "
                        "retry — completed sweep points are in the store "
                        "(`repro sweep resume` recomputes nothing)"
                    )
            while not source.settled:
                self._admit_members()
                spawn_drivers()
                if source.drivers == 0 and not source.settled:
                    # Every driver is gone with spans still pending.  Last
                    # resort: probe even cooling-down breakers, adopt any
                    # late joiner, then concede.
                    self._admit_members(force=True)
                    spawn_drivers()
                    if source.drivers == 0 and not source.settled:
                        source.abort(
                            NoWorkersLeft(
                                "span(s) still pending but every worker is "
                                "dead or circuit-broken (and no replacement "
                                "joined)"
                            )
                        )
                        break
                source.wait(self.membership_interval)
            for thread in all_threads:
                thread.join()
            error = source.error
            if error is not None:
                raise error
            dispatch_span.set_attr("spans", len(results))
        results.sort(key=lambda pair: pair[0])
        return [reply for _, reply in results]

    def _summed_counts(
        self,
        task: TrialTask,
        mode: str,
        start: int,
        stop: int,
        trials_per_unit: int = 1,
    ) -> List[int]:
        counts = [0] * task.channels
        for reply in self._dispatch(mode, start, stop, trials_per_unit):
            chunk = reply["counts"]
            if len(chunk) != task.channels:
                raise ValueError(
                    f"worker returned {len(chunk)} channel(s), "
                    f"expected {task.channels}"
                )
            for channel, value in enumerate(chunk):
                counts[channel] += int(value)
        return counts

    # -- the three spans ---------------------------------------------------

    def run_counts(self, task: TrialTask, start: int, stop: int) -> List[int]:
        if self._payload is None:
            return run_count_range(task, start, stop)
        if start >= stop:
            return [0] * task.channels
        return self._summed_counts(task, "counts", start, stop)

    def run_batches(self, task: TrialTask, first: int, last: int) -> List[int]:
        if self._payload is None:
            return run_batch_range(task, first, last)
        if first >= last:
            return [0] * task.channels
        return self._summed_counts(
            task, "batches", first, last, trials_per_unit=max(1, task.batch_size)
        )

    def run_collect(self, task: TrialTask, start: int, stop: int) -> List[Any]:
        if self._payload is None:
            return run_collect_range(task, start, stop)
        if start >= stop:
            return []
        values: List[Any] = []
        for reply in self._dispatch("collect", start, stop):
            values.extend(decode_blob(reply["values"]))
        return values
