"""Per-backend span-size autotuning, seeded from ``BENCH_*.json`` records.

Every benchmark run appends machine-readable records (see
``benchmarks/conftest.record_bench``) carrying the observed Monte-Carlo
rate (``trials_per_second``) and the backend in effect.  This module
turns those observations into a *span size*: how many trials one
dispatched unit of work should hold so that it is

- **big enough** to amortise its fixed cost (a TCP round trip for the
  distributed backend, a pickle round trip for the pools), and
- **small enough** that spans stay granular: a retried span re-executes
  little work, and the pull-based rebalancing in
  :class:`~repro.backends.distributed.DistributedBackend` has at least
  :data:`MIN_SPANS_PER_WORKER` units per worker to shift between fast
  and slow (or dying) workers.

By the determinism contract a span size can never change results — only
wall time — so autotuning is a pure performance knob, excluded from
result-store cache keys like every other transport option.  Opt in with
``chunk_size="auto"`` on the ``distributed``/``fork-pool``/``shm-pool``
backends (CLI: ``--chunk-size auto``; benchmarks:
``REPRO_BENCH_CHUNK_SIZE=auto``).  Records are read from
``REPRO_BENCH_OUT`` (the directory benchmarks write to; default: the
working directory); with no records at all, a conservative default rate
applies.
"""

from __future__ import annotations

import json
import math
import os
import statistics
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional

#: Fallback Monte-Carlo rate (trials/second) when no records exist —
#: deliberately conservative: underestimating the rate yields smaller
#: spans, which costs a few round trips, never coarse-grained stalls.
DEFAULT_RATE = 20_000.0

#: Target wall seconds per span, per backend.  The distributed backend
#: tolerates a larger span (its per-span cost is a network round trip);
#: the local pools prefer finer ones (their per-span cost is tiny).
TARGET_SPAN_SECONDS: Dict[str, float] = {
    "distributed": 0.5,
    "fork-pool": 0.2,
    "shm-pool": 0.2,
}

#: Target for backends without an entry above.
FALLBACK_TARGET_SECONDS = 0.25

#: Rebalancing granularity floor: a range is never carved into fewer
#: than this many spans per worker (when it has that many trials).
MIN_SPANS_PER_WORKER = 4

#: Records whose ``backend`` field is null ran under the ``--jobs``
#: sugar; they are filed under this key and approximate any local lane.
LOCAL_KEY = "local"

#: Where :func:`record_observed_rates` appends per-worker rates measured
#: during real runs (the distributed backend's autotune feedback loop).
OBSERVED_FILE = "BENCH_observed.json"

#: Observed-rate records kept in :data:`OBSERVED_FILE` (oldest dropped).
OBSERVED_KEEP = 200


def _usable_rate(rate: Any) -> bool:
    """A rate that may enter a median: a finite, positive, real number.

    ``bool`` is excluded explicitly (it is an ``int`` subclass, so
    ``True`` would otherwise sneak in as 1.0), as are NaN (every
    comparison is False, so ``rate <= 0`` does *not* reject it — and one
    NaN poisons the whole median) and ±inf (``inf > 0`` holds, and an
    infinite median drives ``chunk_size="auto"`` to nonsense spans).
    """
    if isinstance(rate, bool) or not isinstance(rate, (int, float)):
        return False
    return math.isfinite(rate) and rate > 0


def bench_directory(directory=None) -> Path:
    """Where ``BENCH_*.json`` records live (``REPRO_BENCH_OUT`` or cwd)."""
    if directory is not None:
        return Path(directory)
    return Path(os.environ.get("REPRO_BENCH_OUT", "."))


def load_bench_rates(directory=None) -> Dict[str, List[float]]:
    """Observed rates by backend name, from every readable record.

    The ``backend`` field holds :meth:`BackendSpec.describe` output
    (``"distributed(workers=...)"``) — only the name before the options
    matters here.  Unreadable files and rate-less records are skipped,
    and so are corrupt rates (zero, negative, NaN, ±inf, booleans, any
    non-number): autotuning must never fail a run — or skew a median —
    over a torn or hand-edited benchmark artifact.
    """
    rates: Dict[str, List[float]] = {}
    root = bench_directory(directory)
    if not root.is_dir():
        return rates
    for path in sorted(root.glob("BENCH_*.json")):
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            continue
        records = payload.get("records") if isinstance(payload, dict) else None
        if not isinstance(records, list):
            continue
        for record in records:
            if not isinstance(record, dict):
                continue
            rate = record.get("trials_per_second")
            if not _usable_rate(rate):
                continue
            described = record.get("backend")
            name = (
                described.split("(", 1)[0]
                if isinstance(described, str) and described
                else LOCAL_KEY
            )
            rates.setdefault(name, []).append(float(rate))
    return rates


def bench_rate(backend_name: str, directory=None) -> Optional[float]:
    """The median observed rate for a backend (``None`` without records).

    Falls back to the local (``--jobs`` sugar) records when the backend
    has none of its own: a worker executes the same range functions the
    local executors do, so the local rate is the right order of
    magnitude — and span sizing only needs the order of magnitude.
    """
    rates = load_bench_rates(directory)
    pool = rates.get(backend_name) or rates.get(LOCAL_KEY)
    if not pool:
        return None
    return statistics.median(pool)


def suggest_chunk_size(
    backend_name: str,
    total: int,
    workers: int = 1,
    rate: Optional[float] = None,
    directory=None,
    target_seconds: Optional[float] = None,
    min_spans_per_worker: int = MIN_SPANS_PER_WORKER,
) -> int:
    """Span size (in trials) for ``total`` trials over ``workers`` workers.

    ``rate`` overrides record lookup (tests, callers with fresher
    numbers).  The result is the rate-derived span capped by the
    granularity floor — at least ``min_spans_per_worker`` spans per
    worker whenever the range is large enough — and is always in
    ``[1, total]``.
    """
    if total <= 0:
        return 1
    if rate is None:
        rate = bench_rate(backend_name, directory) or DEFAULT_RATE
    if target_seconds is None:
        target_seconds = TARGET_SPAN_SECONDS.get(
            backend_name, FALLBACK_TARGET_SECONDS
        )
    span = max(1, int(rate * target_seconds))
    granularity_cap = max(
        1, -(-total // (max(1, workers) * max(1, min_spans_per_worker)))
    )
    return max(1, min(span, granularity_cap, total))


def resolved_rate(holder: Any, backend_name: str, directory=None) -> float:
    """The rate for ``backend_name``, memoised on ``holder``.

    Span partitions are recomputed per dispatched block — hundreds of
    times in an adaptive sweep — and the records on disk do not change
    mid-run, so the glob + read + parse happens once per backend
    instance, not once per block.
    """
    cached = getattr(holder, "_autotune_rate", None)
    if cached is None:
        cached = bench_rate(backend_name, directory) or DEFAULT_RATE
        setattr(holder, "_autotune_rate", cached)
    return cached


def record_observed_rates(
    backend_name: str,
    rates: Mapping[str, float],
    directory=None,
    keep: int = OBSERVED_KEEP,
) -> Optional[Path]:
    """Append per-worker observed rates to :data:`OBSERVED_FILE`.

    The feedback half of autotuning: the distributed backend measures
    what each worker *actually* sustained (``{address: trials/second}``)
    and records it here on close, so the next ``chunk_size="auto"`` run
    starts from real numbers instead of the conservative default.  The
    file is a normal ``BENCH_*.json`` record set — :func:`load_bench_rates`
    picks it up with no special casing — written via tmp-file +
    ``os.replace`` so a concurrent reader never sees a torn file.
    Corrupt inputs are dropped by the same :func:`_usable_rate` filter
    applied on load; with nothing usable, nothing is written.
    """
    usable = {
        address: float(rate)
        for address, rate in rates.items()
        if _usable_rate(rate)
    }
    if not usable:
        return None
    root = bench_directory(directory)
    if not root.is_dir():
        return None
    path = root / OBSERVED_FILE
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        payload = None
    records: List[Dict[str, Any]] = []
    if isinstance(payload, dict) and isinstance(payload.get("records"), list):
        records = [
            record for record in payload["records"] if isinstance(record, dict)
        ]
    for address in sorted(usable):
        records.append(
            {
                "backend": backend_name,
                "trials_per_second": usable[address],
                "worker": address,
            }
        )
    records = records[-max(1, keep):]
    temp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
    try:
        temp.write_text(
            json.dumps({"records": records}, indent=2) + "\n",
            encoding="utf-8",
        )
        os.replace(temp, path)
    except OSError:  # pragma: no cover - read-only bench dir
        temp.unlink(missing_ok=True)
        return None
    return path
