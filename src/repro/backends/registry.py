"""The execution-backend registry: name → factory, capabilities, options.

Every execution substrate in the repository is registered here under a
stable name, and everything that needs one — the trial engine, the sweep
orchestrator, the CLI's ``--backend`` flag, ``repro.api`` — resolves it
through :func:`get`:

======== ============= =====================================================
name      class         substrate
======== ============= =====================================================
serial    SerialExecutor      the in-process reference loop
chunked   ChunkedExecutor     in-process, fixed-size chunks
fork-pool ProcessPoolExecutor one fork pool per engine run (task inherited)
shm-pool  SweepPoolExecutor   one long-lived fork pool per sweep,
                              pickle-shipped tasks, shared-memory results
distributed DistributedBackend spans over TCP to ``repro worker`` processes
======== ============= =====================================================

Each entry declares which options its factory accepts and which of them
are *semantically meaningful* — able to change results.  By the engine's
determinism contract none of the built-ins have any (``jobs``, chunking,
transport and topology are all invisible in the counts), which is what
:meth:`BackendSpec.cache_fields` uses to keep backends out of
result-store cache keys unless a future backend genuinely changes the
numbers.

``--jobs`` remains pure sugar: :func:`spec_for_jobs` maps a worker count
to the historical defaults (serial for 1; ``fork-pool`` for engine runs,
``shm-pool`` for sweeps above that).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, FrozenSet, List, Optional, Tuple, Union

from repro.backends.base import BackendSpec, ExecutionBackend
from repro.util.validation import check_positive_int


@dataclass(frozen=True)
class BackendEntry:
    """One registered backend: factory plus declared metadata."""

    name: str
    description: str
    factory: Callable[..., ExecutionBackend]
    option_names: FrozenSet[str]
    semantic_options: FrozenSet[str]
    supports_shared_memory: bool
    supports_remote: bool
    supports_fault_tolerance: bool
    supports_elastic_membership: bool
    available: Callable[[], bool]


_REGISTRY: Dict[str, BackendEntry] = {}


def register_backend(
    name: str,
    factory: Callable[..., ExecutionBackend],
    *,
    description: str,
    options: Tuple[str, ...] = (),
    semantic_options: Tuple[str, ...] = (),
    supports_shared_memory: bool = False,
    supports_remote: bool = False,
    supports_fault_tolerance: bool = False,
    supports_elastic_membership: bool = False,
    available: Optional[Callable[[], bool]] = None,
) -> None:
    """Register an execution backend under a stable name.

    Public on purpose: a new substrate (asyncio, GPU lane, a different
    RPC fabric) is "write the class, register it" — every consumer
    (engine, orchestrator, CLI, ``repro.api``) picks it up through the
    same :func:`get` call.  ``semantic_options`` names the options that
    can change results and therefore belong in result-store cache keys;
    leave it empty for any backend that honours the determinism
    contract.
    """
    unknown_semantic = set(semantic_options) - set(options)
    if unknown_semantic:
        raise ValueError(
            f"semantic options {sorted(unknown_semantic)} not in the "
            f"declared options of backend {name!r}"
        )
    _REGISTRY[name] = BackendEntry(
        name=name,
        description=description,
        factory=factory,
        option_names=frozenset(options),
        semantic_options=frozenset(semantic_options),
        supports_shared_memory=supports_shared_memory,
        supports_remote=supports_remote,
        supports_fault_tolerance=supports_fault_tolerance,
        supports_elastic_membership=supports_elastic_membership,
        available=available if available is not None else (lambda: True),
    )


def backend_names() -> Tuple[str, ...]:
    return tuple(sorted(_REGISTRY))


def _entry(name: str) -> BackendEntry:
    if name not in _REGISTRY:
        raise ValueError(
            f"unknown backend {name!r}; registered backends: "
            f"{', '.join(backend_names())}"
        )
    return _REGISTRY[name]


def semantic_option_names(name: str) -> FrozenSet[str]:
    """The cache-key-relevant option names of a backend (usually empty)."""
    return _entry(name).semantic_options


def list_backends() -> List[Dict[str, Any]]:
    """JSON-safe descriptions of every registered backend.

    The payload behind ``repro backends list`` and
    :func:`repro.api.list_backends`: name, description, accepted and
    semantic options, capability flags, and whether the backend is
    usable on this platform.
    """
    return [
        {
            "name": entry.name,
            "description": entry.description,
            "options": sorted(entry.option_names),
            "semantic_options": sorted(entry.semantic_options),
            "supports_shared_memory": entry.supports_shared_memory,
            "supports_remote": entry.supports_remote,
            "supports_fault_tolerance": entry.supports_fault_tolerance,
            "supports_elastic_membership": entry.supports_elastic_membership,
            "available": bool(entry.available()),
        }
        for _, entry in sorted(_REGISTRY.items())
    ]


#: What callers may pass anywhere a backend is accepted.
BackendLike = Union[str, BackendSpec, ExecutionBackend, None]


def spec_for_jobs(jobs: int = 1, sweep: bool = False) -> BackendSpec:
    """The historical ``--jobs`` sugar as a :class:`BackendSpec`.

    ``jobs=1`` is the serial reference; above that, engine runs get the
    per-run ``fork-pool`` (tasks inherited through fork, so closures
    need not pickle) and sweeps get the long-lived ``shm-pool`` (one
    pool for every point, shared-memory batch results).
    """
    check_positive_int(jobs, "jobs")
    if jobs == 1:
        return BackendSpec("serial")
    return BackendSpec(
        "shm-pool" if sweep else "fork-pool", options={"jobs": jobs}
    )


def resolve_spec(
    backend: Union[str, BackendSpec, None],
    jobs: Optional[int] = None,
    sweep: bool = False,
) -> BackendSpec:
    """Normalise (backend, jobs) into one :class:`BackendSpec`.

    ``backend=None`` defers entirely to the ``jobs`` sugar.  A bare name
    gets an *explicit* ``jobs`` merged in when the backend accepts that
    option — ``--backend shm-pool --jobs 8`` means what it reads like,
    and ``--jobs 1`` gives a one-worker pool, not the factory default —
    while ``jobs=None`` (unset) leaves the backend's own default alone.
    A full :class:`BackendSpec` is honoured verbatim (its own options
    win).
    """
    if backend is None:
        return spec_for_jobs(1 if jobs is None else jobs, sweep=sweep)
    if isinstance(backend, str):
        backend = BackendSpec(backend)
    entry = _entry(backend.name)
    if jobs is not None and "jobs" in entry.option_names:
        backend = backend.with_options(jobs=jobs)
    return backend


def get(
    backend: BackendLike = None,
    *,
    jobs: Optional[int] = None,
    sweep: bool = False,
) -> ExecutionBackend:
    """Build (or pass through) an execution backend.

    Accepts a registry name, a :class:`BackendSpec`, an already-built
    backend instance (returned untouched — the caller owns its
    lifecycle), or ``None`` for the ``jobs`` sugar.  Unknown names and
    options fail with the full accepted list.
    """
    if backend is not None and not isinstance(backend, (str, BackendSpec)):
        return backend
    spec = resolve_spec(backend, jobs=jobs, sweep=sweep)
    entry = _entry(spec.name)
    unknown = sorted(set(spec.options) - entry.option_names)
    if unknown:
        accepted = sorted(entry.option_names) or "(none)"
        raise ValueError(
            f"backend {spec.name!r} does not accept option(s) {unknown}; "
            f"accepted: {accepted}"
        )
    return entry.factory(**spec.options)


#: Alias for call sites that read better as a constructor.
make_backend = get


# -- built-in registrations ---------------------------------------------------


def _register_builtins() -> None:
    from repro.backends.distributed import DistributedBackend
    from repro.experiments.executors import (
        ChunkedExecutor,
        ProcessPoolExecutor,
        SerialExecutor,
        SweepPoolExecutor,
        fork_available,
        shared_memory_available,
    )

    register_backend(
        "serial",
        SerialExecutor,
        description="in-process reference loop (the determinism oracle)",
    )
    register_backend(
        "chunked",
        ChunkedExecutor,
        description="in-process, fixed-size chunks (partition stress test)",
        options=("chunk_size",),
    )
    register_backend(
        "fork-pool",
        ProcessPoolExecutor,
        description=(
            "one fork pool per engine run; tasks inherited through the "
            "parent's memory image, so closures need not pickle"
        ),
        options=("jobs", "chunk_size"),
        available=fork_available,
    )
    register_backend(
        "shm-pool",
        SweepPoolExecutor,
        description=(
            "one long-lived fork pool per sweep; pickle-shipped tasks, "
            "batch counts through shared memory"
        ),
        options=("jobs", "chunk_size", "use_shared_memory"),
        supports_shared_memory=True,
        available=lambda: fork_available() and shared_memory_available(),
    )
    register_backend(
        "distributed",
        DistributedBackend,
        description=(
            "spans over length-prefixed JSON/TCP to `repro worker serve` "
            "processes (workers=['host:port', ...] or pool=N to spawn a "
            "local pool); retries and rebalances around worker failures, "
            "and the fleet is elastic: breakers re-admit after cooldown, "
            "workers join mid-sweep via announce_bind/watch_hosts, dead "
            "pool children respawn"
        ),
        options=(
            "workers",
            "chunk_size",
            "connect_timeout",
            "pool",
            "span_retries",
            "breaker_threshold",
            "heartbeat_interval",
            "ping_timeout",
            "span_timeout",
            "breaker_cooldown",
            "breaker_cooldown_max",
            "membership_interval",
            "announce_bind",
            "watch_hosts",
            "pool_faults",
            "pool_respawns",
        ),
        supports_remote=True,
        supports_fault_tolerance=True,
        supports_elastic_membership=True,
    )


_register_builtins()
