"""Length-prefixed JSON framing for the distributed sweep protocol.

One frame = a 4-byte big-endian unsigned length followed by that many
bytes of UTF-8 JSON.  JSON keeps the protocol inspectable (tcpdump a
sweep and read it); binary payloads that JSON cannot carry — the pickled
:class:`~repro.experiments.executors.TrialTask` and collect-mode values —
travel base64-encoded inside it.

The message vocabulary (``protocol`` version :data:`PROTOCOL_VERSION`):

========== =============================================== =======================
op          request fields                                  reply
========== =============================================== =======================
``hello``   —                                               ``role``, ``protocol``
``ping``    —                                               ``ok``
``task``    ``task`` (base64 pickle)                        ``ok``
``run``     ``mode`` ∈ {counts, batches, collect},          ``counts`` (list of
            ``start``, ``stop`` (half-open span)            int) or ``values``
                                                            (base64 pickle)
``stats``   —                                               ``stats`` (a metrics
                                                            registry snapshot —
                                                            op counts, per-mode
                                                            service times)
``cancel``  —                                               ``ok``, ``cancelled``
                                                            (in-flight spans
                                                            told to abandon)
========== =============================================== =======================

``stats`` and ``cancel`` are additive — a version-1 worker that predates
them replies ``ok: false``, which :func:`fetch_worker_stats` and
:func:`cancel_worker` fold into ``None`` — so the protocol version stays
at 1.

``cancel`` is the cooperative mid-span drain primitive: it bumps the
worker's cancel generation, and every running span (they check between
sub-slices) replies ``ok: true, cancelled: true`` instead of its counts.
The driver requeues a cancelled span verbatim — abandoning is not a
failure — so a draining or deadline-struck worker hands its work back in
milliseconds instead of holding the drain hostage to the span's runtime.

Every reply carries ``ok``; failures carry ``ok: false`` plus ``error``.
Workers compute spans with the exact same range functions the local
executors use, so per-trial streams — a pure function of
``(seed, label, index)`` — are identical on any machine.

The driver-side membership registry (:mod:`repro.backends.membership`)
speaks the same framing with two additional ops — ``announce`` and
``retire``, each carrying a ``worker`` (``"host:port"``) field — and
identifies itself with its own ``role`` in the ``hello`` reply, so a
worker pointed at the wrong port fails the handshake instead of
misbehaving silently.

**Liveness.**  Three primitives let a client distinguish a *slow* worker
from a *dead* one instead of blocking forever:

- ``timeout=`` on :func:`request` bounds the whole round trip
  (:class:`WireTimeout` on expiry);
- ``idle_timeout=`` on :func:`recv_message`/:func:`request` bounds the
  gap *between bytes* — partial frames survive the wait, so a reply that
  trickles in over many idle windows still arrives intact — and invokes
  the ``on_idle`` hook each time the line goes quiet (return to keep
  waiting, raise to abandon the connection);
- :func:`probe_worker` is the heartbeat: one fresh short-lived
  connection, one ``ping`` frame.  The worker serves connections on
  independent threads, so a ping answers even while every other
  connection is busy computing a span — if the ping fails, the process
  (or the route to it) is gone, not just busy.
"""

from __future__ import annotations

import base64
import json
import pickle
import select
import socket
import struct
from typing import Any, Callable, Dict, Optional

#: Bumped on incompatible message-vocabulary changes; ``hello`` reports it.
PROTOCOL_VERSION = 1

#: The server role string ``hello`` replies carry, so a client can tell a
#: repro worker from some unrelated service listening on the same port.
WORKER_ROLE = "repro-worker"

_HEADER = struct.Struct(">I")

#: Refuse absurd frames instead of allocating them: no legitimate message
#: (even a pickled task with a large population) approaches 256 MiB.
MAX_FRAME_BYTES = 1 << 28


class ProtocolError(ConnectionError):
    """A malformed or out-of-contract frame on a worker connection."""


class WireTimeout(ProtocolError):
    """A bounded wait on a worker connection expired.

    Subclasses :class:`ProtocolError` (and therefore
    :class:`ConnectionError`) on purpose: to a fault-tolerant caller a
    timeout is just another retryable transport failure.
    """


def send_message(sock: socket.socket, payload: Dict[str, Any]) -> None:
    """Send one framed JSON message."""
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    sock.sendall(_HEADER.pack(len(body)) + body)


def _recv_exact(
    sock: socket.socket,
    count: int,
    idle_timeout: Optional[float] = None,
    on_idle: Optional[Callable[[], None]] = None,
) -> Optional[bytes]:
    """Read exactly ``count`` bytes; ``None`` on a clean EOF at a frame
    boundary, :class:`ProtocolError` on EOF mid-frame.

    With ``idle_timeout``, waits for readability in ``idle_timeout``-sized
    windows instead of blocking in ``recv`` — partially read frames are
    preserved across windows.  Each idle window calls ``on_idle`` (which
    may raise to abandon the wait); without a hook, an idle window raises
    :class:`WireTimeout`.
    """
    chunks = []
    remaining = count
    while remaining:
        if idle_timeout is not None:
            readable, _, _ = select.select([sock], [], [], idle_timeout)
            if not readable:
                if on_idle is None:
                    raise WireTimeout(
                        f"no data on worker connection for {idle_timeout}s "
                        f"({count - remaining} of {count} bytes read)"
                    )
                on_idle()
                continue
        chunk = sock.recv(remaining)
        if not chunk:
            if remaining == count:
                return None
            raise ProtocolError(
                f"connection closed mid-frame ({count - remaining} of "
                f"{count} bytes read)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_message(
    sock: socket.socket,
    idle_timeout: Optional[float] = None,
    on_idle: Optional[Callable[[], None]] = None,
) -> Optional[Dict[str, Any]]:
    """Receive one framed JSON message; ``None`` on clean connection close."""
    header = _recv_exact(sock, _HEADER.size, idle_timeout, on_idle)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {length} bytes exceeds {MAX_FRAME_BYTES}")
    body = _recv_exact(sock, length, idle_timeout, on_idle) if length else b""
    if length and body is None:  # pragma: no cover - EOF between header/body
        raise ProtocolError("connection closed between frame header and body")
    try:
        payload = json.loads((body or b"").decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError(f"undecodable frame: {error}") from error
    if not isinstance(payload, dict):
        raise ProtocolError(
            f"frame must be a JSON object, got {type(payload).__name__}"
        )
    return payload


def encode_blob(value: Any) -> str:
    """Pickle + base64: how non-JSON payloads ride inside frames."""
    return base64.b64encode(pickle.dumps(value)).decode("ascii")


def decode_blob(text: str) -> Any:
    return pickle.loads(base64.b64decode(text.encode("ascii")))


def request(
    sock: socket.socket,
    payload: Dict[str, Any],
    timeout: Optional[float] = None,
    idle_timeout: Optional[float] = None,
    on_idle: Optional[Callable[[], None]] = None,
) -> Dict[str, Any]:
    """One round trip; raises on connection loss or an error reply.

    ``timeout`` bounds the whole round trip via the socket timeout
    (restored afterwards); ``idle_timeout``/``on_idle`` bound the gap
    between reply bytes — see :func:`recv_message`.  Both expiries raise
    :class:`WireTimeout`.
    """
    if timeout is not None:
        previous = sock.gettimeout()
        sock.settimeout(timeout)
    try:
        try:
            send_message(sock, payload)
            reply = recv_message(sock, idle_timeout, on_idle)
        except socket.timeout as error:
            # Either direction: a stalled send (peer accepted but never
            # reads) and a stalled reply are the same typed failure.  The
            # expiry may come from a timeout already set on the socket
            # (e.g. the connect-phase hello) rather than our parameter.
            effective = timeout if timeout is not None else sock.gettimeout()
            raise WireTimeout(
                f"worker round trip for {payload.get('op')!r} timed out "
                f"after {effective}s"
            ) from error
    finally:
        if timeout is not None:
            sock.settimeout(previous)
    if reply is None:
        raise ProtocolError(
            f"worker closed the connection during {payload.get('op')!r}"
        )
    if not reply.get("ok"):
        message = (
            f"worker failed {payload.get('op')!r}: "
            f"{reply.get('error', 'unknown error')}"
        )
        remote_traceback = reply.get("traceback")
        if remote_traceback:
            # The remote stack is the only clue when a task fails off-host
            # (version skew, missing module on a worker) — keep it.
            message += f"\nremote traceback:\n{remote_traceback}"
        raise RuntimeError(message)
    return reply


async def send_message_async(writer, payload: Dict[str, Any]) -> None:
    """Send one framed JSON message on an :mod:`asyncio` stream.

    The exact same frame bytes as :func:`send_message` — the sweep
    service daemon and the synchronous clients/workers interoperate on
    one wire format by construction, not by parallel implementations.
    """
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    writer.write(_HEADER.pack(len(body)) + body)
    await writer.drain()


async def recv_message_async(reader) -> Optional[Dict[str, Any]]:
    """Receive one framed JSON message from an :mod:`asyncio` stream.

    ``None`` on a clean EOF at a frame boundary; :class:`ProtocolError`
    on EOF mid-frame, oversized frames, and undecodable bodies — the
    same contract as :func:`recv_message`, minus the idle hooks (an
    asyncio caller bounds waits with ``asyncio.wait_for`` instead).
    """
    import asyncio

    try:
        header = await reader.readexactly(_HEADER.size)
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None
        raise ProtocolError(
            f"connection closed mid-frame ({len(error.partial)} of "
            f"{_HEADER.size} bytes read)"
        ) from error
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {length} bytes exceeds {MAX_FRAME_BYTES}")
    try:
        body = await reader.readexactly(length) if length else b""
    except asyncio.IncompleteReadError as error:
        raise ProtocolError(
            f"connection closed mid-frame ({len(error.partial)} of "
            f"{length} bytes read)"
        ) from error
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError(f"undecodable frame: {error}") from error
    if not isinstance(payload, dict):
        raise ProtocolError(
            f"frame must be a JSON object, got {type(payload).__name__}"
        )
    return payload


def parse_address(address: str) -> tuple:
    """``"host:port"`` → ``(host, port)``; a clear error otherwise."""
    host, separator, port_text = address.rpartition(":")
    if not separator or not host:
        raise ValueError(
            f"worker address must be 'host:port', got {address!r}"
        )
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(
            f"worker address must be 'host:port', got {address!r}"
        ) from None
    if not 0 <= port <= 65535:
        raise ValueError(f"worker port out of range in {address!r}")
    return host, port


def probe_worker(host: str, port: int, timeout: float = 2.0) -> bool:
    """The heartbeat: can the worker answer a ``ping`` right now?

    Opens a fresh, short-lived connection so the probe never competes
    with an in-flight span on the persistent one; the threaded worker
    answers it even while every other connection is busy computing.
    ``False`` means the process is unreachable or not speaking the
    protocol — a *busy* worker still returns ``True``.
    """
    try:
        with socket.create_connection((host, port), timeout=timeout) as sock:
            sock.settimeout(timeout)
            return bool(request(sock, {"op": "ping"}).get("ok"))
    except (OSError, ProtocolError, RuntimeError):
        return False


def cancel_worker(
    host: str, port: int, timeout: float = 2.0
) -> Optional[int]:
    """Tell a worker to abandon its in-flight spans (the ``cancel`` op).

    Fresh short-lived connection, like :func:`probe_worker` — the
    persistent connection is busy carrying the very span being
    cancelled.  Returns how many spans were in flight when the cancel
    landed, or ``None`` on any failure (unreachable worker, or one
    predating the op) — cancellation is best-effort by design: a worker
    that misses it just finishes the span, which the driver then ignores
    or requeues exactly as before cancellation existed.
    """
    try:
        with socket.create_connection((host, port), timeout=timeout) as sock:
            sock.settimeout(timeout)
            reply = request(sock, {"op": "cancel"})
    except (OSError, ProtocolError, RuntimeError):
        return None
    value = reply.get("cancelled")
    if isinstance(value, bool) or not isinstance(value, int):
        return None
    return value


def fetch_worker_stats(
    host: str, port: int, timeout: float = 2.0
) -> Optional[Dict[str, Any]]:
    """Fetch one worker's telemetry snapshot (the ``stats`` op).

    Same fresh-connection discipline as :func:`probe_worker`: telemetry
    collection happens at sweep close, when the persistent connection may
    already be torn down or wedged — and it must never be able to wedge
    the close.  ``None`` on any failure (unreachable, pre-``stats``
    worker, malformed reply); telemetry is a side channel, so callers
    treat ``None`` as "nothing to merge", never as an error.
    """
    try:
        with socket.create_connection((host, port), timeout=timeout) as sock:
            sock.settimeout(timeout)
            snapshot = request(sock, {"op": "stats"}).get("stats")
    except (OSError, ProtocolError, RuntimeError):
        return None
    return snapshot if isinstance(snapshot, dict) else None
