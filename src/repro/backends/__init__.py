"""Unified execution backends: one protocol, many substrates.

The repository's execution layer in one subsystem:

- :mod:`repro.backends.base` — the :class:`ExecutionBackend` protocol
  (open/close + start/finish lifecycles; ``run_counts`` /
  ``run_batches`` / ``run_collect`` spans; capability flags) and the
  JSON-round-trippable :class:`BackendSpec`;
- :mod:`repro.backends.registry` — ``get("serial" | "chunked" |
  "fork-pool" | "shm-pool" | "distributed")`` plus
  :func:`register_backend` for new substrates;
- :mod:`repro.backends.distributed` / :mod:`repro.backends.worker` —
  the TCP span protocol: ``repro worker serve --bind`` on the worker
  side, :class:`DistributedBackend` on the orchestrator side.

Every backend honours the determinism contract — streams keyed by
``(seed, label, index)`` and exact integer aggregation make results
backend-invariant — so backends are interchangeable at run time and
excluded from result-store cache keys unless they declare semantically
meaningful options.
"""

from repro.backends.base import CAPABILITY_FLAGS, BackendSpec, ExecutionBackend
from repro.backends.distributed import DistributedBackend
from repro.backends.registry import (
    BackendEntry,
    backend_names,
    get,
    list_backends,
    make_backend,
    register_backend,
    resolve_spec,
    semantic_option_names,
    spec_for_jobs,
)
from repro.backends.worker import WorkerServer, serve

__all__ = [
    "BackendEntry",
    "BackendSpec",
    "CAPABILITY_FLAGS",
    "DistributedBackend",
    "ExecutionBackend",
    "WorkerServer",
    "backend_names",
    "get",
    "list_backends",
    "make_backend",
    "register_backend",
    "resolve_spec",
    "semantic_option_names",
    "serve",
    "spec_for_jobs",
]
