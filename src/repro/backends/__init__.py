"""Unified execution backends: one protocol, many substrates.

The repository's execution layer in one subsystem:

- :mod:`repro.backends.base` — the :class:`ExecutionBackend` protocol
  (open/close + start/finish lifecycles; ``run_counts`` /
  ``run_batches`` / ``run_collect`` spans; capability flags) and the
  JSON-round-trippable :class:`BackendSpec`;
- :mod:`repro.backends.registry` — ``get("serial" | "chunked" |
  "fork-pool" | "shm-pool" | "distributed")`` plus
  :func:`register_backend` for new substrates;
- :mod:`repro.backends.distributed` / :mod:`repro.backends.worker` —
  the TCP span protocol: ``repro worker serve --bind`` on the worker
  side, :class:`DistributedBackend` on the orchestrator side, with
  worker-failure retry/rebalancing, heartbeat liveness probing, and a
  per-worker circuit breaker;
- :mod:`repro.backends.pool` — :class:`WorkerPool`: spawn a local pool
  of serve processes (or adopt a remote host list) in one call, with
  bounded respawn of dead children;
- :mod:`repro.backends.membership` — elastic-fleet membership: the
  driver-side announce registry (``repro worker serve --announce``) and
  the hosts-file watcher that let workers join/leave a *running* sweep;
- :mod:`repro.backends.faults` — deterministic, seedable fault
  injection (:class:`FaultPlan`): how the chaos tests and the CI chaos
  job prove counts survive worker failure bit-identically;
- :mod:`repro.backends.autotune` — span sizing from recorded
  ``BENCH_*.json`` rates (``chunk_size="auto"``).

Every backend honours the determinism contract — streams keyed by
``(seed, label, index)`` and exact integer aggregation make results
backend-invariant — so backends are interchangeable at run time and
excluded from result-store cache keys unless they declare semantically
meaningful options.
"""

from repro.backends.base import CAPABILITY_FLAGS, BackendSpec, ExecutionBackend
from repro.backends.autotune import (
    bench_rate,
    record_observed_rates,
    suggest_chunk_size,
)
from repro.backends.distributed import (
    DistributedBackend,
    NoWorkersLeft,
    WorkerLost,
)
from repro.backends.faults import FaultPlan, FaultSpec
from repro.backends.membership import (
    HostsFileWatcher,
    MembershipRegistry,
    RegistryBusyError,
    announce_worker,
    retire_worker,
)
from repro.backends.pool import WorkerPool, load_hosts_file, write_addresses_file
from repro.backends.registry import (
    BackendEntry,
    backend_names,
    get,
    list_backends,
    make_backend,
    register_backend,
    resolve_spec,
    semantic_option_names,
    spec_for_jobs,
)
from repro.backends.wire import probe_worker
from repro.backends.worker import WorkerServer, serve

__all__ = [
    "BackendEntry",
    "BackendSpec",
    "CAPABILITY_FLAGS",
    "DistributedBackend",
    "ExecutionBackend",
    "FaultPlan",
    "FaultSpec",
    "HostsFileWatcher",
    "MembershipRegistry",
    "NoWorkersLeft",
    "RegistryBusyError",
    "WorkerLost",
    "WorkerPool",
    "WorkerServer",
    "announce_worker",
    "backend_names",
    "bench_rate",
    "get",
    "list_backends",
    "load_hosts_file",
    "make_backend",
    "probe_worker",
    "record_observed_rates",
    "register_backend",
    "resolve_spec",
    "retire_worker",
    "semantic_option_names",
    "serve",
    "spec_for_jobs",
    "suggest_chunk_size",
    "write_addresses_file",
]
