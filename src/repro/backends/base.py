"""The :class:`ExecutionBackend` protocol and the :class:`BackendSpec` value.

Everything in the repository that runs Monte-Carlo work — the
:class:`~repro.experiments.engine.TrialEngine`, the sweep orchestrator,
the CLI, the benchmarks — talks to exactly one interface.  An execution
backend has two nested lifecycles and three *spans*:

- :meth:`~ExecutionBackend.open` / :meth:`~ExecutionBackend.close`
  bracket long-lived resources (a worker pool, a set of TCP
  connections); a sweep opens its backend once and runs every point
  through it.  Backends are context managers over this pair.
- :meth:`~ExecutionBackend.start` / :meth:`~ExecutionBackend.finish`
  bracket one engine run (one :class:`~repro.experiments.executors.TrialTask`).
- :meth:`~ExecutionBackend.run_counts`, :meth:`~ExecutionBackend.run_batches`
  and :meth:`~ExecutionBackend.run_collect` execute half-open spans of
  trial indices / batch indices and return per-channel success counts
  (or index-ordered values, for collect mode).

**Determinism contract.**  Per-trial streams are a pure function of
``(seed, label, index)`` and per-batch streams of the fixed batch
partition, and count aggregation is exact integer addition — so no
conforming backend, worker count, chunking, or host topology can change
results.  That contract is what lets the result store exclude transport
options (``jobs``, worker addresses) from its cache keys.

A :class:`BackendSpec` is the declarative, JSON-round-trippable half: a
registry name plus an options mapping.  It can live inside a
:class:`~repro.scenarios.spec.ScenarioSpec`'s engine settings and
participates in result-store cache keys only through
:meth:`BackendSpec.cache_fields` — the options the backend's registry
entry declares *semantically meaningful* (none of the built-ins declare
any, which is exactly why existing stores stay valid).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Any,
    Dict,
    List,
    Mapping,
    Optional,
    Protocol,
    Tuple,
    runtime_checkable,
)

import json

_OPTION_SCALARS = (str, int, float, bool, type(None))


def _check_option_value(value: Any, where: str) -> Any:
    """Backend options are JSON scalars or flat lists of them.

    Lists cover worker address lists (``["host:port", ...]``); anything
    deeper has no business in a cache-key-adjacent value.
    """
    if isinstance(value, _OPTION_SCALARS):
        return value
    if isinstance(value, (list, tuple)):
        for item in value:
            if not isinstance(item, _OPTION_SCALARS):
                raise TypeError(
                    f"{where} list items must be JSON scalars, "
                    f"got {type(item).__name__}"
                )
        return list(value)
    raise TypeError(
        f"{where} must be a JSON scalar or a list of scalars, "
        f"got {type(value).__name__}"
    )


@runtime_checkable
class ExecutionBackend(Protocol):
    """Structural interface every execution substrate satisfies.

    The historical :class:`~repro.experiments.executors.TrialExecutor`
    hierarchy implements this protocol verbatim (it is the local half of
    the backend registry); :class:`~repro.backends.distributed.DistributedBackend`
    is the first non-local implementation.  Capability flags are class
    attributes so callers (and ``repro backends list``) can introspect a
    backend without opening it.
    """

    #: Whether batch results can travel through ``multiprocessing.shared_memory``.
    supports_shared_memory: bool
    #: Whether spans execute outside this process's memory image.
    supports_remote: bool
    #: Whether the backend survives worker failures mid-run: failed spans
    #: are retried on surviving workers with results unchanged, instead of
    #: failing fast and relying on ``repro sweep resume``.
    supports_fault_tolerance: bool
    #: Whether the worker fleet can change *while a run is in flight*:
    #: workers join (announce registry, hosts-file edits, pool respawn)
    #: and leave (retire/drain) a running dispatch, and tripped circuit
    #: breakers re-admit after cooldown — results unchanged, by the same
    #: determinism contract.
    supports_elastic_membership: bool

    def open(self) -> "ExecutionBackend": ...

    def close(self) -> None: ...

    def __enter__(self) -> "ExecutionBackend": ...

    def __exit__(self, exc_type, exc, tb) -> None: ...

    def start(self, task: Any) -> None: ...

    def finish(self) -> None: ...

    def run_counts(self, task: Any, start: int, stop: int) -> List[int]: ...

    def run_batches(self, task: Any, first: int, last: int) -> List[int]: ...

    def run_collect(self, task: Any, start: int, stop: int) -> List[Any]: ...


@dataclass(frozen=True)
class BackendSpec:
    """A declarative backend selection: registry name + options.

    Loss-free dict/JSON round trip
    (``spec == BackendSpec.from_json(spec.to_json())``), so a spec can be
    pinned inside a scenario's engine settings, printed by
    ``repro scenarios show --json``, and shipped across processes.

    Equality is structural.  Option values must be JSON scalars or flat
    lists of scalars (worker address lists).
    """

    name: str
    options: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not self.name:
            raise ValueError(
                f"backend name must be a non-empty string, got {self.name!r}"
            )
        normalized: Dict[str, Any] = {}
        for key, value in dict(self.options).items():
            if not isinstance(key, str) or not key:
                raise ValueError(
                    f"backend option name must be a non-empty string, got {key!r}"
                )
            normalized[key] = _check_option_value(
                value, f"backend option {key!r}"
            )
        object.__setattr__(self, "options", normalized)

    def with_options(self, **options: Any) -> "BackendSpec":
        """A copy with extra options merged in (existing keys win)."""
        merged = {**options, **self.options}
        return BackendSpec(name=self.name, options=merged)

    def cache_fields(self) -> Dict[str, Any]:
        """The options that belong in a result-store cache key.

        Only options the registry declares *semantically meaningful* for
        this backend — ones that could change results, which by the
        determinism contract excludes every transport knob (``jobs``,
        ``chunk_size``, ``use_shared_memory``, ``workers``, timeouts).
        All built-in backends declare none, so the returned dict is
        empty and the backend never perturbs a cache key — exactly the
        historical ``jobs``-is-excluded behaviour, generalised.
        """
        from repro.backends.registry import semantic_option_names

        semantic = semantic_option_names(self.name)
        return {
            key: value
            for key, value in sorted(self.options.items())
            if key in semantic
        }

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "options": dict(self.options)}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "BackendSpec":
        return cls(
            name=payload["name"], options=dict(payload.get("options", {}))
        )

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=(indent is None))

    @classmethod
    def from_json(cls, text: str) -> "BackendSpec":
        return cls.from_dict(json.loads(text))

    def describe(self) -> str:
        """A compact human-readable rendering (CLI progress lines)."""
        if not self.options:
            return self.name
        rendered = ", ".join(
            f"{key}={value}" for key, value in sorted(self.options.items())
        )
        return f"{self.name}({rendered})"


#: The capability flags :func:`repro.backends.list_backends` reports.
CAPABILITY_FLAGS: Tuple[str, ...] = (
    "supports_shared_memory",
    "supports_remote",
    "supports_fault_tolerance",
    "supports_elastic_membership",
)
