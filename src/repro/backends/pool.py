"""The worker-pool launcher: stand up a set of trial workers in one call.

PR 4's distributed backend assumed an operator had already started every
``repro worker serve`` process by hand.  :class:`WorkerPool` removes that
step for the common cases:

- **Local pool** — ``WorkerPool(workers=3)`` spawns three
  ``repro worker serve --bind host:0`` subprocesses, reads each one's
  announced ephemeral address off its stdout, and owns their lifecycle
  (``stop`` sends SIGTERM, escalating to SIGKILL).  A
  :class:`~repro.backends.faults.FaultPlan` maps per-worker scripted
  failures onto the spawned processes (``--fault`` per child), which is
  how the chaos tests and the CI ``chaos`` job kill a real worker
  process mid-sweep, deterministically.
- **Remote hosts** — :meth:`WorkerPool.from_hosts_file` reads a
  ``host:port``-per-line file describing workers already running
  elsewhere, optionally heartbeat-probing each; ``stop`` leaves them
  alone (their operator owns them).
- **Respawn** — with ``max_respawns=K``, :meth:`WorkerPool.respawn_dead`
  relaunches up to ``K`` dead children on fresh ephemeral ports.
  Respawned children carry *no* ``--fault`` flag: a scripted fault has
  already fired once, and re-arming it on the replacement would make
  chaos runs non-deterministic.  The attached
  :class:`~repro.backends.distributed.DistributedBackend` adopts the
  new addresses through its membership sweep, and
  :func:`write_addresses_file` republishes them atomically for any
  ``--workers @FILE`` reader.

Either way, :attr:`addresses` plugs straight into
:class:`~repro.backends.distributed.DistributedBackend` — or let the
backend do both halves itself with ``DistributedBackend(pool=N)`` /
``repro sweep run ... --backend distributed --pool N``.  The CLI face is
``repro worker pool`` (see ``repro worker pool --help``).
"""

from __future__ import annotations

import contextlib
import os
import re
import select
import signal
import subprocess
import sys
import time
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

from repro.backends.faults import FaultPlan
from repro.backends.wire import parse_address, probe_worker

#: What ``repro worker serve`` announces on stdout once bound.
_ADDRESS_LINE = re.compile(r"listening on (\S+?):(\d+)")


def load_hosts_file(path) -> List[str]:
    """Read a worker host-list file: one ``host:port`` per line.

    Blank lines and ``#`` comments are ignored; every surviving line is
    validated as an address.  This is both :meth:`WorkerPool.from_hosts_file`
    and the CLI's ``--workers @path`` spelling.
    """
    addresses: List[str] = []
    for raw_line in Path(path).read_text(encoding="utf-8").splitlines():
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        parse_address(line)
        addresses.append(line)
    if not addresses:
        raise ValueError(f"hosts file {path} names no workers")
    return addresses


def write_addresses_file(path, addresses: Sequence[str]) -> None:
    """Publish worker addresses to a hosts file, atomically.

    Written via a same-directory temp file + :func:`os.replace`, so a
    concurrently-launched adopter (``--workers @FILE``, a
    :class:`~repro.backends.membership.HostsFileWatcher`) can never read
    a half-written list — it sees the old complete file or the new one.
    """
    path = Path(path)
    temp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
    temp.write_text(
        "\n".join(addresses) + "\n" if addresses else "", encoding="utf-8"
    )
    os.replace(temp, path)


def _await_line(stream, timeout: float, context: str) -> str:
    """Read one ``\\n``-terminated line off a subprocess pipe, bounded."""
    deadline = time.monotonic() + timeout
    buffer = b""
    descriptor = stream.fileno()
    while b"\n" not in buffer:
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            raise TimeoutError(
                f"{context}: no announcement within {timeout}s "
                f"(got {buffer!r})"
            )
        readable, _, _ = select.select([descriptor], [], [], remaining)
        if not readable:
            continue
        chunk = os.read(descriptor, 4096)
        if not chunk:
            raise RuntimeError(
                f"{context}: exited before announcing its address "
                f"(got {buffer!r})"
            )
        buffer += chunk
    return buffer.split(b"\n", 1)[0].decode("utf-8", "replace")


@contextlib.contextmanager
def worker_import_path(directory):
    """Temporarily prepend ``directory`` to ``PYTHONPATH`` for spawned workers.

    Workers unpickle task callables by importing their defining module;
    callables that live outside the installed package (test helpers,
    benchmark modules) need their directory on the children's path.
    Spawning happens under this context; the parent environment is
    restored on exit.
    """
    directory = str(directory)
    previous = os.environ.get("PYTHONPATH")
    os.environ["PYTHONPATH"] = (
        directory
        if not previous
        else os.pathsep.join([directory, previous])
    )
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop("PYTHONPATH", None)
        else:
            os.environ["PYTHONPATH"] = previous


def _worker_environment() -> dict:
    """The spawned worker's environment: inherit ours, ensure importability.

    The child runs ``python -m repro.cli``, so the directory containing
    the ``repro`` package must be on its ``PYTHONPATH`` even when the
    parent imported it via ``pytest``'s ``pythonpath`` or an editable
    install the child would not see.
    """
    import repro

    source_root = str(Path(repro.__file__).resolve().parent.parent)
    environment = dict(os.environ)
    existing = environment.get("PYTHONPATH", "")
    paths = existing.split(os.pathsep) if existing else []
    if source_root not in paths:
        environment["PYTHONPATH"] = os.pathsep.join([source_root, *paths])
    return environment


class WorkerPool:
    """Launch and own local ``repro worker serve`` processes.

    Parameters
    ----------
    workers:
        Local serve processes to spawn (ignored when ``addresses`` names
        already-running remote workers).
    host:
        Interface the local workers bind (loopback by default — the
        protocol ships pickles).
    fault_plan:
        Optional :class:`~repro.backends.faults.FaultPlan` (or its
        compact string form) mapping worker indices to scripted faults.
    addresses:
        Pre-existing workers to adopt instead of spawning; ``stop``
        leaves them running.
    startup_timeout:
        Seconds each spawned worker gets to announce its address.
    max_respawns:
        Total budget of dead-child relaunches :meth:`respawn_dead` may
        spend (0, the default, disables respawning — scripted chaos
        tests rely on a killed worker *staying* dead unless they opt in).
    """

    def __init__(
        self,
        workers: int = 2,
        host: str = "127.0.0.1",
        fault_plan=None,
        addresses: Sequence[str] = (),
        startup_timeout: float = 30.0,
        max_respawns: int = 0,
    ) -> None:
        if isinstance(fault_plan, str):
            fault_plan = FaultPlan.parse(fault_plan)
        if fault_plan is not None and not isinstance(fault_plan, FaultPlan):
            fault_plan = FaultPlan(faults=fault_plan)
        self.workers = workers
        self.host = host
        self.fault_plan = fault_plan
        self.startup_timeout = startup_timeout
        self.max_respawns = max_respawns
        self.respawns_used = 0
        self._remote = tuple(addresses)
        for address in self._remote:
            parse_address(address)
        self._processes: List[subprocess.Popen] = []
        self._addresses: Optional[Tuple[str, ...]] = None

    @classmethod
    def from_hosts_file(cls, path, probe: bool = False) -> "WorkerPool":
        """Adopt the remote workers a host-list file names.

        With ``probe``, heartbeat-ping each one and fail loudly on the
        unreachable — the "is my fleet actually up?" pre-flight.
        """
        pool = cls(addresses=load_hosts_file(path))
        if probe:
            dead = [
                address
                for address in pool._remote
                if not probe_worker(*parse_address(address))
            ]
            if dead:
                raise ConnectionError(
                    f"worker(s) not answering pings: {', '.join(dead)}"
                )
        return pool

    @property
    def addresses(self) -> Tuple[str, ...]:
        """Every worker's ``host:port`` — feed to ``DistributedBackend``."""
        if self._addresses is None:
            raise RuntimeError("WorkerPool not started; call start() first")
        return self._addresses

    @property
    def local(self) -> bool:
        """Whether this pool owns (spawned) its worker processes."""
        return not self._remote

    def _spawn_worker(self, index: int, fault=None) -> Tuple[subprocess.Popen, str]:
        """Launch one ``repro worker serve`` child; its process + address."""
        command = [
            sys.executable,
            "-m",
            "repro.cli",
            "worker",
            "serve",
            "--bind",
            f"{self.host}:0",
        ]
        if fault is not None:
            command += ["--fault", fault.describe()]
        process = subprocess.Popen(
            command,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            env=_worker_environment(),
        )
        try:
            line = _await_line(
                process.stdout,
                self.startup_timeout,
                f"worker {index} (pid {process.pid})",
            )
            match = _ADDRESS_LINE.search(line)
            if match is None:
                raise RuntimeError(
                    f"worker {index} announced {line!r}, expected a "
                    f"'listening on host:port' line"
                )
        except BaseException:
            if process.poll() is None:
                process.kill()
            process.wait()
            if process.stdout is not None:
                process.stdout.close()
            raise
        return process, f"{match.group(1)}:{match.group(2)}"

    def start(self) -> "WorkerPool":
        """Spawn the local workers (no-op for remote pools); idempotent."""
        if self._addresses is not None:
            return self
        if self._remote:
            self._addresses = self._remote
            return self
        addresses: List[str] = []
        try:
            for index in range(self.workers):
                fault = (
                    self.fault_plan.for_worker(index)
                    if self.fault_plan is not None
                    else None
                )
                process, address = self._spawn_worker(index, fault)
                self._processes.append(process)
                addresses.append(address)
        except BaseException:
            self.stop()
            raise
        self._addresses = tuple(addresses)
        return self

    def poll(self) -> List[Optional[int]]:
        """Each spawned worker's exit code (``None`` while running)."""
        return [process.poll() for process in self._processes]

    def respawn_dead(self) -> List[Tuple[str, str]]:
        """Relaunch dead children on fresh ports, within ``max_respawns``.

        Returns ``[(old_address, new_address), ...]`` for each slot
        relaunched, so an attached backend can drain the dead address
        and admit the new one.  Replacements are spawned *without* the
        slot's scripted fault — it already fired once, and a replacement
        that re-dies on schedule would make chaos runs non-deterministic.
        Remote (adopted) pools never respawn: their operator owns them.
        """
        if not self.local or self._addresses is None:
            return []
        replaced: List[Tuple[str, str]] = []
        addresses = list(self._addresses)
        for index, process in enumerate(self._processes):
            if process.poll() is None:
                continue
            if self.respawns_used >= self.max_respawns:
                break
            try:
                replacement, address = self._spawn_worker(index)
            except (OSError, RuntimeError, TimeoutError):
                # A failed relaunch still spends budget: a slot that
                # cannot come back should not be retried forever.
                self.respawns_used += 1
                continue
            process.wait()
            if process.stdout is not None:
                process.stdout.close()
            self._processes[index] = replacement
            replaced.append((addresses[index], address))
            addresses[index] = address
            self.respawns_used += 1
        if replaced:
            self._addresses = tuple(addresses)
        return replaced

    def stop(self, grace_seconds: float = 5.0) -> None:
        """Terminate spawned workers: SIGTERM, then SIGKILL stragglers.

        Remote (adopted) workers are untouched — their operator owns
        them.  Safe to call repeatedly.
        """
        processes, self._processes = self._processes, []
        self._addresses = self._remote or None
        for process in processes:
            if process.poll() is None:
                try:
                    process.send_signal(signal.SIGTERM)
                except OSError:  # pragma: no cover - already reaped
                    pass
        deadline = time.monotonic() + grace_seconds
        for process in processes:
            remaining = max(0.0, deadline - time.monotonic())
            try:
                process.wait(timeout=remaining)
            except subprocess.TimeoutExpired:  # pragma: no cover - stuck
                process.kill()
                process.wait()
        for process in processes:
            if process.stdout is not None:
                process.stdout.close()

    def __enter__(self) -> "WorkerPool":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()
