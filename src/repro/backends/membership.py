"""Dynamic worker membership: the announce registry and the hosts watcher.

PR 5 froze a sweep's worker fleet at :meth:`DistributedBackend.open`
time; this module is the membership half of the elastic topology that
lets workers join and leave a *running* sweep.  Two complementary
channels feed the backend's admission sweep (see
:meth:`~repro.backends.distributed.DistributedBackend` — it polls both
between spans and adopts changes without interrupting dispatch):

- :class:`MembershipRegistry` — a driver-side TCP endpoint speaking the
  same length-prefixed JSON frames as the span protocol
  (:mod:`repro.backends.wire`), with two extra ops:

  ========== ============================== ==========================
  op          request fields                 reply
  ========== ============================== ==========================
  ``announce`` ``worker`` (``host:port``)    ``ok``, ``accepted``
  ``retire``   ``worker`` (``host:port``)    ``ok``
  ========== ============================== ==========================

  A worker started with ``repro worker serve --announce HOST:PORT``
  announces its own bound address here (retrying until the driver's
  registry is up, since the sweep may still be starting); a clean
  shutdown sends ``retire`` so the driver drains the departing worker
  instead of striking it.  Announced addresses are heartbeat-probed
  before acceptance — the registry never feeds the backend an address
  that cannot answer a ping — and the design deliberately follows the
  lightning gossip shape: an announcement is *an address plus proof of
  liveness*, and stale/duplicate announcements are idempotently
  dropped, not errors.

- :class:`HostsFileWatcher` — the low-tech path: point the backend at
  the same ``host:port``-per-line file ``--workers @FILE`` reads, and
  edits to it (atomic writes — see
  :func:`repro.backends.pool.write_addresses_file`) become join/leave
  events on the next poll.  Torn or momentarily invalid file states are
  treated as "no change", never as a mass departure.

Both channels produce the same thing: ``(joined, left)`` address
batches, drained by the backend under its own admission cadence.  By
the determinism contract membership can never change results — per-span
counts are pure functions of ``(task, span)`` — so joining a worker
mid-sweep only ever changes wall time.
"""

from __future__ import annotations

import errno
import os
import socket
import socketserver
import threading
import time
from pathlib import Path
from typing import Callable, List, Optional, Set, Tuple

from repro.backends.wire import (
    PROTOCOL_VERSION,
    parse_address,
    probe_worker,
    recv_message,
    request,
    send_message,
)

#: The role string the registry's ``hello`` reply carries, so an
#: announcing worker can tell a driver registry from an unrelated
#: service (or from a span worker) on the same port.
REGISTRY_ROLE = "repro-registry"


class RegistryBusyError(ConnectionError):
    """Another live driver's registry already owns this announce address.

    Raised instead of the raw ``EADDRINUSE`` when the occupant answers a
    ``hello`` with :data:`REGISTRY_ROLE` — two drivers binding the same
    ``--announce-bind`` would split the announcing workers between them
    undefined-ly, so the second one refuses cleanly, naming the live
    driver (its pid when it reports one) so the operator knows *which*
    sweep holds the fleet.
    """


class _RegistryHandler(socketserver.BaseRequestHandler):
    """One announce/retire conversation until EOF; mirrors the worker loop."""

    def handle(self) -> None:
        while True:
            try:
                message = recv_message(self.request)
            except (ConnectionError, OSError):
                return
            if message is None:
                return
            op = message.get("op")
            if op == "hello":
                reply = {
                    "ok": True,
                    "role": REGISTRY_ROLE,
                    "protocol": PROTOCOL_VERSION,
                    # The owning driver's pid: what a refused second
                    # driver reports in its RegistryBusyError.
                    "pid": os.getpid(),
                }
            elif op == "ping":
                reply = {"ok": True}
            elif op == "announce":
                reply = self.server.announce(message.get("worker"))
            elif op == "retire":
                reply = self.server.retire(message.get("worker"))
            else:
                reply = {"ok": False, "error": f"unknown op {op!r}"}
            try:
                send_message(self.request, reply)
            except OSError:  # pragma: no cover - peer vanished mid-reply
                return


class MembershipRegistry(socketserver.ThreadingTCPServer):
    """The driver-side announce endpoint of an elastic sweep.

    Owned by a :class:`~repro.backends.distributed.DistributedBackend`
    built with ``announce_bind=...`` (started in ``open``, stopped in
    ``close``); runs its accept loop on a daemon thread and queues
    join/leave events that :meth:`poll` drains.  Announcements are
    validated (``host:port`` shape) and, with ``probe=True`` (the
    default), heartbeat-pinged before acceptance, so a typo'd or
    already-dead announcement is refused at the door with
    ``accepted: false`` instead of poisoning the span queue.
    """

    allow_reuse_address = True
    daemon_threads = True

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        probe: bool = True,
        ping_timeout: float = 2.0,
    ) -> None:
        try:
            super().__init__((host, port), _RegistryHandler)
        except OSError as error:
            if error.errno != errno.EADDRINUSE:
                raise
            occupant = _describe_occupant(host, port)
            if occupant is not None:
                raise RegistryBusyError(
                    f"announce address {host}:{port} is already owned by a "
                    f"live driver registry"
                    + (
                        f" (pid {occupant['pid']})"
                        if occupant.get("pid") is not None
                        else ""
                    )
                    + " — a fleet answers to one driver at a time; pick "
                    "another --announce-bind or stop that sweep"
                ) from error
            raise
        self.probe = probe
        self.ping_timeout = ping_timeout
        self._lock = threading.Lock()
        self._joined: List[str] = []
        self._left: List[str] = []
        self._thread: Optional[threading.Thread] = None
        self._loop_started = threading.Event()
        self._stopping = False
        #: How long stop() waits on the accept loop before abandoning it
        #: and closing the socket out from under it anyway.
        self._stop_timeout = 5.0

    @property
    def address(self) -> Tuple[str, int]:
        """The actually-bound ``(host, port)`` — resolves ``port=0``."""
        host, port = self.server_address[:2]
        return host, port

    # -- the two membership ops -------------------------------------------

    def announce(self, worker: object) -> dict:
        try:
            host, port = parse_address(str(worker))
        except ValueError as error:
            # Refusal, not protocol failure: the announcer learns its
            # address was rejected instead of seeing a raised error.
            return {"ok": True, "accepted": False, "error": str(error)}
        address = f"{host}:{port}"
        if self.probe and not probe_worker(host, port, timeout=self.ping_timeout):
            # Refused at the door: an address that cannot answer a ping
            # now would only burn strikes in the dispatch later.
            return {"ok": True, "accepted": False, "error": "worker not answering pings"}
        with self._lock:
            if address not in self._joined:
                self._joined.append(address)
        return {"ok": True, "accepted": True}

    def retire(self, worker: object) -> dict:
        try:
            host, port = parse_address(str(worker))
        except ValueError as error:
            return {"ok": False, "error": str(error)}
        with self._lock:
            self._left.append(f"{host}:{port}")
        return {"ok": True}

    def poll(self) -> Tuple[List[str], List[str]]:
        """Drain pending membership events as ``(joined, left)`` addresses."""
        with self._lock:
            joined, self._joined = self._joined, []
            left, self._left = self._left, []
        return joined, left

    # -- lifecycle ---------------------------------------------------------

    def serve_forever(self, poll_interval: float = 0.1) -> None:
        self._loop_started.set()
        try:
            super().serve_forever(poll_interval=poll_interval)
        except OSError:
            # The listening socket closed under the accept loop: only
            # legitimate when stop() forced it after a wedged shutdown.
            if not self._stopping:
                raise

    def service_actions(self) -> None:
        # Runs once per accept-loop iteration.  After stop() closes the
        # socket out from under a wedged loop, poll() reports the stale
        # fd invalid every pass — without this exit the orphaned thread
        # would spin on it forever.
        if self._stopping and self.socket.fileno() == -1:
            raise OSError("listening socket closed by stop()")

    def start(self) -> "MembershipRegistry":
        """Run the accept loop on a daemon thread; idempotent."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self.serve_forever,
                kwargs={"poll_interval": 0.1},
                name=f"repro-registry-{self.address[1]}",
                daemon=True,
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        """Stop the accept loop and *always* release the listening socket.

        ``shutdown()`` blocks on an event ``serve_forever`` sets on exit,
        so it is (a) skipped when the loop never ran and (b) bounded by a
        helper thread — a wedged accept loop must not turn stop() into a
        hang.  Whatever the loop thread does, ``server_close()`` runs:
        the port is released even when the thread outlives its 5s join
        (the orphaned loop then dies on the closed socket, which
        :meth:`serve_forever` swallows as part of stopping).
        """
        self._stopping = True
        thread, self._thread = self._thread, None
        if thread is not None:
            if self._loop_started.wait(timeout=1):
                waiter = threading.Thread(target=self.shutdown, daemon=True)
                waiter.start()
                waiter.join(timeout=self._stop_timeout)
            thread.join(timeout=self._stop_timeout)
        self.server_close()

    def __enter__(self) -> "MembershipRegistry":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()


def _describe_occupant(
    host: str, port: int, timeout: float = 2.0
) -> Optional[dict]:
    """Who is listening on a bind address we failed to take?

    A ``hello`` round trip: a reply carrying :data:`REGISTRY_ROLE` means
    a live driver registry owns the port (returns its hello payload, pid
    included when it reports one); anything else — unreachable, wrong
    role, not speaking the protocol — returns ``None`` and the caller
    surfaces the original bind error.
    """
    try:
        with socket.create_connection((host, port), timeout=timeout) as sock:
            sock.settimeout(timeout)
            hello = request(sock, {"op": "hello"})
    except (OSError, ConnectionError, RuntimeError, ValueError):
        return None
    if hello.get("role") != REGISTRY_ROLE:
        return None
    return hello


def _registry_request(
    registry_address: str, payload: dict, timeout: float = 5.0
) -> dict:
    """One framed round trip to a driver registry, role-checked."""
    host, port = parse_address(registry_address)
    with socket.create_connection((host, port), timeout=timeout) as sock:
        sock.settimeout(timeout)
        hello = request(sock, {"op": "hello"})
        if hello.get("role") != REGISTRY_ROLE:
            raise ConnectionError(
                f"{registry_address} is not a repro driver registry "
                f"(role {hello.get('role')!r})"
            )
        return request(sock, payload)


def resolve_announced_address(
    bound_host: str, bound_port: int, registry_address: str
) -> str:
    """The address a worker should announce as its own.

    A worker bound to a wildcard interface (``0.0.0.0`` / ``::``) has no
    single address to announce; the interface it reaches the registry
    through is, by construction, one the driver can dial back on.
    """
    if bound_host not in ("0.0.0.0", "::", ""):
        return f"{bound_host}:{bound_port}"
    host, port = parse_address(registry_address)
    with socket.create_connection((host, port), timeout=5.0) as sock:
        return f"{sock.getsockname()[0]}:{bound_port}"


def announce_worker(
    registry_address: str,
    worker_address: str,
    timeout: float = 5.0,
    retry_seconds: float = 0.0,
    retry_interval: float = 0.5,
) -> bool:
    """Announce ``worker_address`` to a driver registry; ``True`` if accepted.

    With ``retry_seconds``, keeps retrying connection failures for that
    long — the normal path for a replacement worker started *before* the
    driver's registry is listening (e.g. the CI chaos job races a
    replacement against the sweep's startup).  A reachable registry that
    *refuses* the announcement (probe failed, malformed address) is
    terminal: retrying would not change the answer.
    """
    deadline = time.monotonic() + retry_seconds
    while True:
        try:
            reply = _registry_request(
                registry_address,
                {"op": "announce", "worker": worker_address},
                timeout=timeout,
            )
            return bool(reply.get("accepted"))
        except (OSError, ConnectionError):
            if time.monotonic() >= deadline:
                return False
            time.sleep(retry_interval)


def retire_worker(
    registry_address: str, worker_address: str, timeout: float = 2.0
) -> bool:
    """Best-effort clean departure; ``False`` if the registry is gone."""
    try:
        return bool(
            _registry_request(
                registry_address,
                {"op": "retire", "worker": worker_address},
                timeout=timeout,
            ).get("ok")
        )
    except (OSError, ConnectionError):
        return False


class HostsFileWatcher:
    """Join/leave events from edits to a ``host:port``-per-line file.

    The low-tech membership channel: the operator (or ``repro worker
    pool --addresses-file``, which rewrites the file atomically on
    respawn) edits the same file ``--workers @FILE`` reads, and the
    backend's admission sweep turns the diff into membership changes.
    ``poll`` is cheap — an ``mtime`` check — and deliberately failure-
    deaf: an unreadable, empty, or torn file is "no change", because a
    transient file state must never read as a mass worker departure.
    """

    def __init__(self, path, initial: Tuple[str, ...] = ()) -> None:
        self.path = Path(path)
        self._snapshot: Set[str] = set(initial)
        self._mtime: Optional[float] = None
        try:
            self._mtime = self.path.stat().st_mtime_ns
        except OSError:
            pass

    def poll(self) -> Tuple[List[str], List[str]]:
        """``(joined, left)`` since the last poll (empty when unchanged)."""
        try:
            mtime = self.path.stat().st_mtime_ns
        except OSError:
            return [], []
        if mtime == self._mtime:
            return [], []
        self._mtime = mtime
        from repro.backends.pool import load_hosts_file

        try:
            current = set(load_hosts_file(self.path))
        except (OSError, ValueError):
            return [], []
        joined = sorted(current - self._snapshot)
        left = sorted(self._snapshot - current)
        self._snapshot = current
        return joined, left
