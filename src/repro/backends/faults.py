"""Deterministic, seedable fault injection for the distributed backend.

The resilience layer (retry/rebalancing in
:class:`~repro.backends.distributed.DistributedBackend`, heartbeat
probing, the circuit breaker) is only trustworthy if it can be *proven*
to preserve the exact-count contract under failure — so faults are a
first-class, scriptable object here rather than ad-hoc test monkey
patching.  A :class:`FaultSpec` describes one worker's failure, a
:class:`FaultPlan` assigns specs to workers by index, and a
:class:`FaultInjector` applies a spec inside a
:class:`~repro.backends.worker.WorkerServer` at an exact, reproducible
point in its span stream.  The same objects drive the chaos test suite
(``tests/backends/test_faults.py``), the CI ``chaos`` job, and manual
experiments (``repro worker serve --fault kill@2``,
``repro worker pool --fault "1:kill@2,2:slow@0:0.05"``).

Fault kinds (all triggered after the worker has served ``after_spans``
``run`` requests normally; the faulted span itself is never executed, so
the client *must* recover it elsewhere for counts to survive):

``kill``
    The worker dies: in a ``repro worker serve`` process the process
    exits abruptly; in-process servers close the listening socket and
    every open connection.  Terminal — reconnects are refused.
``drop``
    One connection is torn down without a reply, once; the worker keeps
    serving, so a reconnect succeeds.  Models a flapping network path.
``slow``
    Every span from the trigger on is delayed by ``delay`` seconds
    before executing *correctly*.  Models an overloaded worker: the
    heartbeat answers, so a patient client should wait, not requeue.
    The injected sleep is drain-cancellable (a ``cancel`` wire op
    abandons it mid-sleep), so a slow worker can still be drained
    mid-span like any other.
``hang``
    The worker wedges: the in-flight span never answers and the
    listening socket closes, so heartbeat probes fail.  Models a stuck
    process — only detectable by liveness probing, not by EOF.

Everything round-trips through JSON and a compact CLI string form, and
:meth:`FaultPlan.random` derives an arbitrary schedule from a seed while
always leaving at least one worker unfaulted — the precondition under
which the property tests demand bit-identical totals.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from threading import Lock
from typing import Any, Dict, Mapping, Optional, Tuple

#: Every fault kind, in documentation order.
FAULT_KINDS = ("kill", "drop", "slow", "hang")

#: Kinds after which the worker never serves another span.
FATAL_KINDS = frozenset({"kill", "hang"})


@dataclass(frozen=True)
class FaultSpec:
    """One worker's scripted failure.

    ``after_spans`` run requests are served normally; the next one
    triggers the fault.  ``delay`` is the per-span slowdown for ``slow``
    and the wedge hold time for ``hang`` (0 means "until shutdown").
    """

    kind: str
    after_spans: int = 0
    delay: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"fault kind must be one of {FAULT_KINDS}, got {self.kind!r}"
            )
        if not isinstance(self.after_spans, int) or self.after_spans < 0:
            raise ValueError(
                f"after_spans must be a non-negative int, got {self.after_spans!r}"
            )
        if self.delay < 0:
            raise ValueError(f"delay must be >= 0, got {self.delay!r}")

    @property
    def fatal(self) -> bool:
        """Whether the worker is permanently gone once this fires."""
        return self.kind in FATAL_KINDS

    def describe(self) -> str:
        """The compact CLI form: ``kill@2``, ``slow@1:0.05``."""
        text = f"{self.kind}@{self.after_spans}"
        if self.delay:
            text += f":{self.delay:g}"
        return text

    @classmethod
    def parse(cls, text: str) -> "FaultSpec":
        """Parse the compact form (``KIND@AFTER[:DELAY]``)."""
        head, _, delay_text = text.strip().partition(":")
        kind, separator, after_text = head.partition("@")
        try:
            after_spans = int(after_text) if separator else 0
            delay = float(delay_text) if delay_text else 0.0
        except ValueError:
            raise ValueError(f"cannot parse fault spec {text!r}") from None
        return cls(kind=kind, after_spans=after_spans, delay=delay)

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "kind": self.kind, "after_spans": self.after_spans
        }
        if self.delay:
            payload["delay"] = self.delay
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "FaultSpec":
        return cls(
            kind=payload["kind"],
            after_spans=int(payload.get("after_spans", 0)),
            delay=float(payload.get("delay", 0.0)),
        )


@dataclass(frozen=True)
class FaultPlan:
    """Worker index → :class:`FaultSpec`: one sweep's failure schedule."""

    faults: Mapping[int, FaultSpec] = field(default_factory=dict)

    def __post_init__(self) -> None:
        normalized: Dict[int, FaultSpec] = {}
        for index, spec in dict(self.faults).items():
            index = int(index)
            if index < 0:
                raise ValueError(f"worker index must be >= 0, got {index}")
            if not isinstance(spec, FaultSpec):
                spec = FaultSpec.from_dict(spec)
            normalized[index] = spec
        object.__setattr__(self, "faults", normalized)

    def __bool__(self) -> bool:
        return bool(self.faults)

    def for_worker(self, index: int) -> Optional[FaultSpec]:
        return self.faults.get(index)

    def survivors(self, workers: int) -> Tuple[int, ...]:
        """Worker indices that stay alive for the whole run (no fatal fault)."""
        return tuple(
            index
            for index in range(workers)
            if index not in self.faults or not self.faults[index].fatal
        )

    def fatal_indices(self, workers: int) -> Tuple[int, ...]:
        """Worker indices scripted to die for good (``kill``/``hang``).

        The complement of :meth:`survivors` — what pool respawn and the
        CLI's exit reporting consult to tell a *scripted* death (expected,
        eligible for a replacement) from an unexpected one.
        """
        return tuple(
            index
            for index in range(workers)
            if index in self.faults and self.faults[index].fatal
        )

    def describe(self) -> str:
        """The compact CLI form: ``0:kill@2,2:slow@0:0.05``."""
        return ",".join(
            f"{index}:{spec.describe()}"
            for index, spec in sorted(self.faults.items())
        )

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Parse the compact form (``IDX:KIND@AFTER[:DELAY],...``)."""
        faults: Dict[int, FaultSpec] = {}
        for part in text.split(","):
            part = part.strip()
            if not part:
                continue
            index_text, separator, spec_text = part.partition(":")
            if not separator:
                raise ValueError(
                    f"fault plan entries are 'index:spec', got {part!r}"
                )
            try:
                index = int(index_text)
            except ValueError:
                raise ValueError(
                    f"fault plan entries are 'index:spec', got {part!r}"
                ) from None
            faults[index] = FaultSpec.parse(spec_text)
        return cls(faults=faults)

    def to_dict(self) -> Dict[str, Any]:
        return {
            str(index): spec.to_dict()
            for index, spec in sorted(self.faults.items())
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "FaultPlan":
        return cls(
            faults={
                int(index): FaultSpec.from_dict(spec)
                for index, spec in payload.items()
            }
        )

    @classmethod
    def random(
        cls,
        seed: int,
        workers: int,
        max_after_spans: int = 3,
        slow_delay: float = 0.02,
    ) -> "FaultPlan":
        """A seed-deterministic schedule that leaves ≥ 1 worker unfaulted.

        The generator behind the chaos property tests: any plan it can
        produce must leave ``run_counts``/``run_batches`` totals
        bit-identical to a fault-free run.  ``hang`` is deliberately
        excluded here — it is covered by dedicated tests, because waiting
        out a heartbeat window per example would dominate the property
        suite's runtime.
        """
        if workers < 2:
            raise ValueError(
                f"a random fault plan needs >= 2 workers, got {workers}"
            )
        rng = random.Random(seed)
        victims = rng.sample(range(workers), rng.randint(1, workers - 1))
        faults = {
            victim: FaultSpec(
                kind=rng.choice(("kill", "drop", "slow")),
                after_spans=rng.randint(0, max_after_spans),
                delay=slow_delay,
            )
            for victim in victims
        }
        return cls(faults=faults)


class FaultInjector:
    """Applies one :class:`FaultSpec` at its scripted point in a span stream.

    Owned by a :class:`~repro.backends.worker.WorkerServer`; the handler
    calls :meth:`on_span` once per ``run`` request (across *all*
    connections, under a lock, so the trigger point is a deterministic
    function of the number of spans the worker has been asked to serve).
    ``kill``/``drop``/``hang`` fire exactly once; ``slow`` applies to the
    trigger span and every span after it.
    """

    def __init__(self, spec: FaultSpec) -> None:
        self.spec = spec
        self._lock = Lock()
        self._spans_seen = 0
        self._fired = False

    @property
    def spans_seen(self) -> int:
        with self._lock:
            return self._spans_seen

    @property
    def fired(self) -> bool:
        with self._lock:
            return self._fired

    def on_span(self) -> Optional[FaultSpec]:
        """Count one incoming ``run`` request; the fault to apply, if any."""
        with self._lock:
            self._spans_seen += 1
            if self._spans_seen <= self.spec.after_spans:
                return None
            if self.spec.kind == "slow":
                self._fired = True
                return self.spec
            if self._fired:
                return None
            self._fired = True
            return self.spec
