"""Command-line interface.

Installed as the ``repro`` console script::

    repro plan --scheme joint -p 0.25 --budget 10000
    repro plan --scheme joint -p 0.25 --budget 500 --frontier
    repro figures --figure 7 --trials 400
    repro scenarios list
    repro scenarios show fig7
    repro sweep run fig7 --jobs 4 --store .repro-store
    repro sweep resume fig7 --jobs 4 --store .repro-store
    repro cost -k 5 -l 8 -n 10
    repro demo

Every subcommand writes plain text to stdout; the heavy lifting lives in
the library modules, keeping this a thin argument-parsing shell that tests
drive through :func:`main` with an argv list.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Timed-release of self-emerging data using DHTs "
        "(ICDCS 2017 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    plan = subparsers.add_parser(
        "plan", help="choose (k, l) for a scheme at a malicious rate"
    )
    plan.add_argument(
        "--scheme",
        choices=["central", "disjoint", "joint", "share"],
        default="joint",
    )
    plan.add_argument("-p", "--malicious-rate", type=float, required=True)
    plan.add_argument("--budget", type=int, default=10000)
    plan.add_argument("--target", type=float, default=0.999)
    plan.add_argument(
        "--frontier",
        action="store_true",
        help="print the Pareto frontier of (Rr, Rd) configurations",
    )
    plan.add_argument(
        "--alpha",
        type=float,
        default=3.0,
        help="T / t_life (share scheme planning only)",
    )

    figures = subparsers.add_parser(
        "figures", help="regenerate a paper figure as a table"
    )
    figures.add_argument(
        "--figure", choices=["6a", "6b", "6c", "6d", "7", "8"], required=True
    )
    figures.add_argument("--trials", type=int, default=300)
    figures.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the Monte-Carlo trial engine "
        "(1 = serial; results are identical for any value)",
    )
    figures.add_argument(
        "--tolerance",
        type=float,
        default=None,
        help="adaptive early stopping: stop a point once its CI "
        "half-width is at most this value (default: run all trials)",
    )
    figures.add_argument(
        "--kernel",
        choices=["vectorized", "scalar"],
        default="vectorized",
        help="Monte-Carlo lane for the Fig. 6 attack trials: the numpy "
        "batch kernels (default) or the per-trial scalar oracle; the "
        "lanes agree statistically, not bit-for-bit",
    )
    figures.add_argument(
        "--batch-size",
        type=int,
        default=None,
        help="trials per vectorised batch (default: 100-trial batches on "
        "the Fig. 6 attack lane so --jobs can fan them out; figures 7/8 "
        "keep one batch per point, or check-interval-sized batches when "
        "--tolerance is set)",
    )

    scenarios = subparsers.add_parser(
        "scenarios", help="inspect the declarative scenario registry"
    )
    scenarios_actions = scenarios.add_subparsers(dest="action", required=True)
    scenarios_list = scenarios_actions.add_parser(
        "list", help="list every registered scenario"
    )
    scenarios_list.add_argument(
        "--kind", default=None, help="only scenarios of this kind"
    )
    scenarios_show = scenarios_actions.add_parser(
        "show", help="print one scenario spec (human-readable or --json)"
    )
    scenarios_show.add_argument("name", help="registered scenario name")
    scenarios_show.add_argument(
        "--json",
        action="store_true",
        help="print the spec as JSON (the serialized, round-trippable form)",
    )

    sweep = subparsers.add_parser(
        "sweep",
        help="run a registered scenario through the sweep orchestrator",
    )
    sweep_actions = sweep.add_subparsers(dest="action", required=True)
    for action, help_text in (
        (
            "run",
            "run a scenario; points already in the result store are skipped",
        ),
        (
            "resume",
            "continue an interrupted sweep (finished points load from the store)",
        ),
    ):
        action_parser = sweep_actions.add_parser(action, help=help_text)
        action_parser.add_argument("name", help="registered scenario name")
        action_parser.add_argument(
            "--store",
            default=".repro-store",
            help="result-store directory; one JSON file per point, named by "
            "the content hash of (kind, params, trials, seed, tolerance, "
            "engine settings) — worker count never affects results, so it "
            "is not part of the key (default: %(default)s)",
        )
        action_parser.add_argument(
            "--jobs",
            type=int,
            default=1,
            help="worker processes; the whole sweep shares ONE process pool "
            "(1 = serial; results are identical for any value)",
        )
        action_parser.add_argument(
            "--trials",
            type=int,
            default=None,
            help="override the spec's per-point trial budget",
        )
        action_parser.add_argument(
            "--tolerance",
            type=float,
            default=None,
            help="adaptive early stopping base tolerance; the scenario's "
            "schedule may tighten it per point (e.g. near curve knees)",
        )
        if action == "run":
            action_parser.add_argument(
                "--force",
                action="store_true",
                help="recompute every point, overwriting cached results",
            )

    cost = subparsers.add_parser(
        "cost", help="communication/storage cost per scheme"
    )
    cost.add_argument("-k", "--replication", type=int, default=3)
    cost.add_argument("-l", "--path-length", type=int, default=6)
    cost.add_argument("-n", "--share-rows", type=int, default=8)

    subparsers.add_parser("demo", help="run an end-to-end release on a small overlay")

    return parser


def _command_plan(args) -> int:
    from repro.core.planner import plan_configuration
    from repro.core.schemes.keyshare import plan_share_scheme
    from repro.core.tradeoff import pareto_frontier

    if args.scheme == "share":
        plan = plan_share_scheme(
            args.malicious_rate, args.budget, args.alpha, 1.0
        )
        print(
            f"share scheme: k={plan.replication} l={plan.path_length} "
            f"n={plan.shares_per_column} d~{plan.dead_share_estimate}"
        )
        print(
            f"  thresholds m (cols 2..l): {list(plan.thresholds)}"
        )
        print(
            f"  Rr={plan.release_resilience:.4f} Rd={plan.drop_resilience:.4f}"
        )
        return 0

    if args.frontier:
        if args.scheme == "central":
            print("the centralized scheme has a single configuration")
            return 1
        points = pareto_frontier(args.scheme, args.malicious_rate, args.budget)
        print(f"Pareto frontier ({args.scheme}, p={args.malicious_rate}, "
              f"budget={args.budget}): {len(points)} points")
        for point in points:
            print(
                f"  k={point.replication:3d} l={point.path_length:4d} "
                f"cost={point.cost:6d} Rr={point.release_resilience:.4f} "
                f"Rd={point.drop_resilience:.4f}"
            )
        return 0

    configuration = plan_configuration(
        args.scheme, args.malicious_rate, args.budget, target=args.target
    )
    print(
        f"{configuration.scheme}: k={configuration.replication} "
        f"l={configuration.path_length} cost={configuration.cost}"
    )
    print(
        f"  Rr={configuration.release_resilience:.4f} "
        f"Rd={configuration.drop_resilience:.4f} "
        f"({'meets' if configuration.meets_target else 'misses'} "
        f"target {configuration.target})"
    )
    return 0


def _command_figures(args) -> int:
    from repro.experiments.attack_resilience import (
        run_attack_resilience,
        series_by_scheme,
    )
    from repro.experiments.churn_resilience import panel, run_churn_resilience
    from repro.experiments.cost import run_share_cost, series_by_budget
    from repro.experiments.engine import TrialEngine
    from repro.experiments.reporting import format_cost_table, format_series_table

    engine = TrialEngine(jobs=args.jobs, tolerance=args.tolerance)

    if args.figure in ("6a", "6b", "6c", "6d"):
        population = 10000 if args.figure in ("6a", "6b") else 100
        wants_cost = args.figure in ("6b", "6d")
        points = run_attack_resilience(
            population_size=population,
            trials=args.trials,
            measure=not wants_cost,
            engine=engine,
            kernel=args.kernel,
            batch_size=args.batch_size,
        )
        series = series_by_scheme(points)
        x_values = [entry[0] for entry in series["central"]]
        if wants_cost:
            print(
                format_cost_table(
                    f"Fig 6({args.figure[-1]}): required nodes (N={population})",
                    x_values,
                    {name: [e[3] for e in series[name]] for name in series},
                )
            )
        else:
            print(
                format_series_table(
                    f"Fig 6({args.figure[-1]}): attack resilience (N={population})",
                    "p",
                    x_values,
                    {name: [e[1] for e in series[name]] for name in series},
                )
            )
        return 0

    if args.figure == "7":
        points = run_churn_resilience(
            trials=args.trials, engine=engine, batch_size=args.batch_size
        )
        for alpha in (1.0, 2.0, 3.0, 5.0):
            data = panel(points, alpha)
            x_values = [p for p, _ in data["central"]]
            print(
                format_series_table(
                    f"Fig 7 (alpha={alpha:g})",
                    "p",
                    x_values,
                    {name: [v for _, v in data[name]] for name in data},
                )
            )
            print()
        return 0

    if args.figure == "8":
        points = run_share_cost(
            trials=args.trials, engine=engine, batch_size=args.batch_size
        )
        grouped = series_by_budget(points)
        budgets = sorted(grouped)
        x_values = [p for p, _, _ in grouped[budgets[0]]]
        print(
            format_series_table(
                "Fig 8 (alpha=3)",
                "p",
                x_values,
                {f"N={b}": [m for _, m, _ in grouped[b]] for b in budgets},
            )
        )
        return 0

    raise AssertionError("unreachable")


def _command_scenarios(args) -> int:
    from repro.scenarios import builtin_scenarios, get_scenario

    if args.action == "list":
        scenarios = builtin_scenarios()
        names = sorted(
            name
            for name, spec in scenarios.items()
            if args.kind is None or spec.kind == args.kind
        )
        if not names:
            print(f"no scenarios of kind {args.kind!r}")
            return 1
        width = max(len(name) for name in names)
        for name in names:
            spec = scenarios[name]
            print(
                f"{name.ljust(width)}  {spec.kind:<18} "
                f"{spec.point_count:4d} points  {spec.description}"
            )
        return 0

    try:
        spec = get_scenario(args.name)
    except ValueError as error:
        print(error)
        return 1
    if args.json:
        print(spec.to_json(indent=2))
        return 0
    print(f"{spec.name}: {spec.description}")
    print(f"  kind: {spec.kind}")
    print(f"  fixed: {spec.fixed}")
    for axis in spec.axes:
        print(f"  axis {axis.name}: {list(axis.values)}")
    print(
        f"  grid: {spec.point_count} points x {spec.trials} trials "
        f"(seed {spec.seed})"
    )
    if spec.tolerance is not None:
        print(f"  tolerance: {spec.tolerance}")
    if spec.schedule is not None:
        for rule in spec.schedule.rules:
            print(
                f"  tolerance rule: x{rule.scale:g} when "
                f"{rule.low:g} <= {rule.axis} <= {rule.high:g}"
            )
    return 0


def _command_sweep(args) -> int:
    from repro.experiments.reporting import format_sweep_table
    from repro.scenarios import ResultStore, SweepOrchestrator, get_scenario

    try:
        spec = get_scenario(args.name)
    except ValueError as error:
        print(error)
        return 1
    store = ResultStore(args.store)
    already = store.count(spec.name)
    if args.action == "resume" and already == 0:
        print(
            f"nothing to resume: no cached points for {spec.name!r} in "
            f"{args.store} (starting fresh)"
        )
    orchestrator = SweepOrchestrator(
        store=store, jobs=args.jobs, tolerance=args.tolerance
    )
    total = spec.point_count

    def progress(point, record, from_cache):
        status = "cached" if from_cache else "computed"
        trials_run = record["result"].get("trials_run", 0)
        detail = "" if from_cache else f" ({trials_run} trials)"
        print(
            f"  [{point.index + 1}/{total}] {record['point'] or spec.fixed} "
            f"{status}{detail}"
        )

    report = orchestrator.run(
        spec,
        trials=args.trials,
        force=getattr(args, "force", False),
        progress=progress,
    )
    print(
        f"{spec.name}: {report.points} points — {report.computed} computed, "
        f"{report.cached} cached, {report.trials_run} new trials; "
        f"store: {args.store}"
    )
    if spec.axes:
        print()
        print(
            format_sweep_table(
                f"{spec.name}: {spec.description}",
                spec.axis_names,
                list(report.records),
                value_key=spec.value_key,
                value_format="{:.0f}" if spec.value_key == "cost" else "{:.4f}",
            )
        )
    return 0


def _command_cost(args) -> int:
    from repro.core.sizing import centralized_cost, key_share_cost, multipath_cost

    print(centralized_cost())
    print(multipath_cost(args.replication, args.path_length, joint=False))
    print(multipath_cost(args.replication, args.path_length, joint=True))
    print(key_share_cost(args.share_rows, args.path_length))
    return 0


def _command_demo(args) -> int:
    from repro.cloud import CloudStore
    from repro.core import DataReceiver, DataSender, ReleaseTimeline
    from repro.core.protocol import ProtocolContext, install_holders
    from repro.dht import build_network
    from repro.util import RandomSource

    overlay = build_network(120, seed=11)
    install_holders(overlay, ProtocolContext(network=overlay.network))
    alice = DataSender(
        overlay.nodes[overlay.node_ids[0]],
        CloudStore(overlay.loop.clock),
        RandomSource(42, "alice"),
    )
    bob = DataReceiver(overlay.nodes[overlay.node_ids[1]])
    timeline = ReleaseTimeline(0.0, 600.0, 3)
    result = alice.send_multipath(
        b"hello from the past", timeline, bob.node_id, replication=3, joint=True
    )
    overlay.loop.run(until=599.0)
    print(f"t=599: receiver has key: {bob.has_key(result.key_id)}")
    overlay.loop.run()
    message = bob.decrypt_from_cloud(alice.cloud, result.blob.blob_id, result.key_id)
    print(f"t={overlay.loop.clock.now:.1f}: decrypted {message!r}")
    return 0


_COMMANDS = {
    "plan": _command_plan,
    "figures": _command_figures,
    "scenarios": _command_scenarios,
    "sweep": _command_sweep,
    "cost": _command_cost,
    "demo": _command_demo,
}


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
