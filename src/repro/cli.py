"""Command-line interface.

Installed as the ``repro`` console script::

    repro plan --scheme joint -p 0.25 --budget 10000
    repro plan --scheme joint -p 0.25 --budget 500 --frontier
    repro figures --figure 7 --trials 400
    repro scenarios list
    repro scenarios show fig7
    repro sweep run fig7 --jobs 4 --store .repro-store
    repro sweep run fig7 --trace fig7.jsonl
    repro sweep resume fig7 --jobs 4 --store .repro-store
    repro trace summary fig7.jsonl
    repro trace validate fig7.jsonl
    repro sweep run fig7 --backend distributed --workers host1:7070,host2:7070
    repro sweep run fig7 --backend distributed --pool 4
    repro serve --bind 127.0.0.1:7272 --store .repro-store --jobs 4
    repro sweep run fig7 --submit 127.0.0.1:7272
    repro jobs submit fig7 --at 127.0.0.1:7272
    repro jobs status --at 127.0.0.1:7272
    repro jobs watch job-0001 --at 127.0.0.1:7272
    repro jobs cancel job-0001 --at 127.0.0.1:7272
    repro sweep run fig7 --backend distributed --pool 2 --announce-bind 127.0.0.1:7171
    repro sweep run fig7 --backend distributed --pool 2 --fallback local --point-deadline 120
    repro sweep verify --store .repro-store
    repro sweep repair fig7 --store .repro-store
    repro sweep gc --store .repro-store --keep-latest
    repro sweep gc --store .repro-store --tmp-grace 0 --purge-quarantine
    repro worker serve --bind 127.0.0.1:7070
    repro worker serve --bind 127.0.0.1:0 --announce 127.0.0.1:7171
    repro worker pool --workers 3 --addresses-file pool.addr --respawn 1
    repro backends list
    repro cost -k 5 -l 8 -n 10
    repro demo

Every subcommand writes plain text to stdout; the heavy lifting lives in
the library modules, keeping this a thin argument-parsing shell that tests
drive through :func:`main` with an argv list.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
import time
from typing import List, Optional

#: The built-in backends, for ``--help`` readability only — the registry
#: is the source of truth, and ``--backend`` accepts anything registered
#: (including backends added via ``repro.backends.register_backend``),
#: validated lazily so ``--help`` never imports the backend subsystem.
_BUILTIN_BACKENDS = "serial, chunked, fork-pool, shm-pool, distributed"


def _add_backend_arguments(parser, sweep: bool) -> None:
    """The shared execution-backend surface of ``figures`` and ``sweep``."""
    scope = "the whole sweep shares ONE backend" if sweep else (
        "the Monte-Carlo trial engine"
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help=f"worker processes for {scope} "
        "(1 = serial; results are identical for any value; sugar for "
        f"--backend {'shm-pool' if sweep else 'fork-pool'}, and merged "
        "into an explicit --backend that takes a jobs option)",
    )
    parser.add_argument(
        "--backend",
        metavar="NAME",
        default=None,
        help="execution backend by registry name — built-ins: "
        f"{_BUILTIN_BACKENDS}; see `repro backends list` (default: "
        "--jobs decides; the determinism contract makes results "
        "identical on every backend)",
    )
    parser.add_argument(
        "--workers",
        default=None,
        help="worker addresses for --backend distributed: host:port,... of "
        "`repro worker serve` processes, or @FILE for a host-list file "
        "(one host:port per line, # comments)",
    )
    parser.add_argument(
        "--pool",
        type=int,
        default=None,
        help="with --backend distributed: spawn (and own) a local pool of "
        "this many worker processes instead of naming --workers",
    )
    parser.add_argument(
        "--chunk-size",
        default=None,
        metavar="N|auto",
        help="span size per dispatched unit of work for backends that "
        "take one (never observable in results); 'auto' sizes spans "
        "from recorded BENCH_*.json rates",
    )
    parser.add_argument(
        "--announce-bind",
        default=None,
        metavar="HOST:PORT",
        help="with --backend distributed: run a membership registry on "
        "this address so `repro worker serve --announce` processes can "
        "join the fleet mid-sweep (port 0 picks an ephemeral port)",
    )
    parser.add_argument(
        "--watch-workers",
        action="store_true",
        help="with --backend distributed --workers @FILE: re-read the "
        "host-list file while the sweep runs, joining added workers and "
        "draining removed ones",
    )
    parser.add_argument(
        "--trace",
        default=None,
        metavar="FILE.jsonl",
        help="record a JSONL trace (span tree + typed events) to this "
        "file; a pure side channel — results and store records are "
        "byte-identical with or without it (inspect with `repro trace "
        "summary`)",
    )


def _parse_chunk_size(text):
    if text is None or text == "auto":
        return text
    try:
        value = int(text)
    except ValueError:
        value = 0
    if value <= 0:
        raise SystemExit(
            f"--chunk-size must be a positive integer or 'auto', got {text!r}"
        )
    return value


def _backend_from_args(args, sweep: bool):
    """Resolve the CLI's backend surface into a BackendSpec.

    (--backend, --workers/--pool, --chunk-size, --jobs) — returns ``None``
    when no explicit backend was requested, deferring to the ``--jobs``
    sugar (and, for sweeps, a spec's pinned backend).
    """
    from repro.backends import BackendSpec, resolve_spec

    if args.backend is None:
        if args.workers or args.pool:
            raise SystemExit("--workers/--pool require --backend distributed")
        if args.announce_bind or args.watch_workers:
            raise SystemExit(
                "--announce-bind/--watch-workers require --backend distributed"
            )
        if args.chunk_size:
            raise SystemExit(
                "--chunk-size requires an explicit --backend that takes one"
            )
        return None
    options = {}
    if args.backend == "distributed":
        if not args.workers and not args.pool:
            raise SystemExit(
                "--backend distributed requires --workers "
                "host:port[,host:port...] (or @hosts-file) or --pool N"
            )
        if args.workers and args.pool:
            raise SystemExit("pass either --workers or --pool, not both")
        if args.workers:
            if args.workers.startswith("@"):
                from repro.backends import load_hosts_file

                try:
                    options["workers"] = load_hosts_file(args.workers[1:])
                except (OSError, ValueError) as error:
                    raise SystemExit(str(error)) from None
                if args.watch_workers:
                    options["watch_hosts"] = args.workers[1:]
            elif args.watch_workers:
                raise SystemExit(
                    "--watch-workers requires --workers @FILE (a host-list "
                    "file the sweep can re-read)"
                )
            else:
                options["workers"] = [
                    worker.strip()
                    for worker in args.workers.split(",")
                    if worker.strip()
                ]
        elif args.watch_workers:
            raise SystemExit(
                "--watch-workers requires --workers @FILE (a host-list "
                "file the sweep can re-read)"
            )
        if args.pool:
            options["pool"] = args.pool
        if args.announce_bind:
            options["announce_bind"] = args.announce_bind
    elif args.workers or args.pool:
        raise SystemExit("--workers/--pool require --backend distributed")
    elif args.announce_bind or args.watch_workers:
        raise SystemExit(
            "--announce-bind/--watch-workers require --backend distributed"
        )
    chunk_size = _parse_chunk_size(args.chunk_size)
    if chunk_size is not None:
        options["chunk_size"] = chunk_size
    try:
        return resolve_spec(
            BackendSpec(args.backend, options=options),
            jobs=args.jobs,
            sweep=sweep,
        )
    except ValueError as error:  # unknown backend name: a clean CLI error
        raise SystemExit(str(error)) from None


def _open_tracer(args):
    """Build a Tracer from ``--trace`` (or ``None`` without the flag).

    A trace file that cannot even be opened degrades to a warning — the
    side-channel contract starts here, not just at emit time.
    """
    path = getattr(args, "trace", None)
    if not path:
        return None
    from repro.obs import JsonlSink, Tracer

    try:
        sink = JsonlSink(path)
    except OSError as error:
        print(
            f"warning: cannot open trace file {path} "
            f"({type(error).__name__}: {error}); tracing disabled — "
            f"results are unaffected",
            file=sys.stderr,
            flush=True,
        )
        return None
    return Tracer(sink)


def _finish_trace(tracer, path) -> None:
    """Close the tracer (publishing the file) and report where it went."""
    if tracer is None:
        return
    broken_before_close = tracer.sink_broken
    tracer.close()
    if not tracer.sink_broken:
        print(f"trace written: {path}", flush=True)
    elif not broken_before_close:
        pass  # close itself warned; nothing more to say
    else:
        print(
            f"trace incomplete (sink failed mid-run): {path}",
            file=sys.stderr,
            flush=True,
        )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Timed-release of self-emerging data using DHTs "
        "(ICDCS 2017 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    plan = subparsers.add_parser(
        "plan", help="choose (k, l) for a scheme at a malicious rate"
    )
    plan.add_argument(
        "--scheme",
        choices=["central", "disjoint", "joint", "share"],
        default="joint",
    )
    plan.add_argument("-p", "--malicious-rate", type=float, required=True)
    plan.add_argument("--budget", type=int, default=10000)
    plan.add_argument("--target", type=float, default=0.999)
    plan.add_argument(
        "--frontier",
        action="store_true",
        help="print the Pareto frontier of (Rr, Rd) configurations",
    )
    plan.add_argument(
        "--alpha",
        type=float,
        default=3.0,
        help="T / t_life (share scheme planning only)",
    )

    figures = subparsers.add_parser(
        "figures", help="regenerate a paper figure as a table"
    )
    figures.add_argument(
        "--figure", choices=["6a", "6b", "6c", "6d", "7", "8"], required=True
    )
    figures.add_argument("--trials", type=int, default=300)
    _add_backend_arguments(figures, sweep=False)
    figures.add_argument(
        "--tolerance",
        type=float,
        default=None,
        help="adaptive early stopping: stop a point once its CI "
        "half-width is at most this value (default: run all trials)",
    )
    figures.add_argument(
        "--kernel",
        choices=["vectorized", "scalar"],
        default="vectorized",
        help="Monte-Carlo lane for the Fig. 6 attack trials: the numpy "
        "batch kernels (default) or the per-trial scalar oracle; the "
        "lanes agree statistically, not bit-for-bit",
    )
    figures.add_argument(
        "--batch-size",
        type=int,
        default=None,
        help="trials per vectorised batch (default: 100-trial batches on "
        "the Fig. 6 attack lane so --jobs can fan them out; figures 7/8 "
        "keep one batch per point, or check-interval-sized batches when "
        "--tolerance is set)",
    )

    scenarios = subparsers.add_parser(
        "scenarios", help="inspect the declarative scenario registry"
    )
    scenarios_actions = scenarios.add_subparsers(dest="action", required=True)
    scenarios_list = scenarios_actions.add_parser(
        "list", help="list every registered scenario"
    )
    scenarios_list.add_argument(
        "--kind", default=None, help="only scenarios of this kind"
    )
    scenarios_show = scenarios_actions.add_parser(
        "show", help="print one scenario spec (human-readable or --json)"
    )
    scenarios_show.add_argument("name", help="registered scenario name")
    scenarios_show.add_argument(
        "--json",
        action="store_true",
        help="print the spec as JSON (the serialized, round-trippable form)",
    )

    sweep = subparsers.add_parser(
        "sweep",
        help="run a registered scenario through the sweep orchestrator",
    )
    sweep_actions = sweep.add_subparsers(dest="action", required=True)
    for action, help_text in (
        (
            "run",
            "run a scenario; points already in the result store are skipped",
        ),
        (
            "resume",
            "continue an interrupted sweep (finished points load from the store)",
        ),
    ):
        action_parser = sweep_actions.add_parser(action, help=help_text)
        action_parser.add_argument("name", help="registered scenario name")
        action_parser.add_argument(
            "--store",
            default=".repro-store",
            help="result-store directory; one JSON file per point, named by "
            "the content hash of (kind, params, trials, seed, tolerance, "
            "engine settings) — worker count never affects results, so it "
            "is not part of the key (default: %(default)s)",
        )
        _add_backend_arguments(action_parser, sweep=True)
        action_parser.add_argument(
            "--trials",
            type=int,
            default=None,
            help="override the spec's per-point trial budget",
        )
        action_parser.add_argument(
            "--tolerance",
            type=float,
            default=None,
            help="adaptive early stopping base tolerance; the scenario's "
            "schedule may tighten it per point (e.g. near curve knees)",
        )
        action_parser.add_argument(
            "--batch-size",
            type=int,
            default=None,
            help="override the spec's engine batch size (the batch "
            "partition shapes results, so this lands in cache keys — "
            "compare backends with the same value; the chaos harness "
            "uses it to carve the smoke sweep into many spans)",
        )
        action_parser.add_argument(
            "--kernel",
            default=None,
            help="pin the point runner's kernel lane for this sweep "
            "(e.g. 'epoch' / 'epoch-scalar' for availability and "
            "timeliness kinds, 'vectorized' / 'scalar' for the attack "
            "kinds); the value lands in the spec's fixed params — and "
            "therefore in cache keys — so a pinned run never collides "
            "with the scenario's default lane",
        )
        action_parser.add_argument(
            "--fallback",
            choices=["local"],
            default=None,
            help="degradation ladder: when the distributed fleet "
            "collapses (or a point blows --point-deadline), finish the "
            "sweep on a local backend instead of aborting — results are "
            "byte-identical on either rung (default: abort)",
        )
        action_parser.add_argument(
            "--point-deadline",
            type=float,
            default=None,
            metavar="SECONDS",
            help="watchdog: abandon any point still running after this "
            "many seconds (cancelling its in-flight spans) and, with "
            "--fallback local, retry it locally",
        )
        action_parser.add_argument(
            "--no-journal",
            action="store_true",
            help="skip the per-sweep write-ahead journal (the journal is "
            "what lets a resume after a driver crash tell committed "
            "points from mid-flight ones)",
        )
        if action == "run":
            action_parser.add_argument(
                "--force",
                action="store_true",
                help="recompute every point, overwriting cached results",
            )
            action_parser.add_argument(
                "--submit",
                default=None,
                metavar="HOST:PORT",
                help="submit the sweep to a running `repro serve` daemon "
                "instead of executing it here; the daemon's store and "
                "backend apply (local --store/--backend options are "
                "refused), progress streams back per point, and work "
                "overlapping other jobs is deduplicated",
            )

    sweep_gc = sweep_actions.add_parser(
        "gc",
        help="prune orphaned temp files, corrupt records, and (with "
        "--keep-latest) records from older store-format generations",
    )
    sweep_gc.add_argument(
        "--store",
        default=".repro-store",
        help="result-store directory to collect (default: %(default)s)",
    )
    sweep_gc.add_argument(
        "--keep-latest",
        action="store_true",
        help="also remove records whose store-format generation is older "
        "than the newest one present (pruned points recompute on the "
        "next sweep)",
    )
    sweep_gc.add_argument(
        "--dry-run",
        action="store_true",
        help="report what would be removed without deleting anything",
    )
    sweep_gc.add_argument(
        "--tmp-grace",
        type=float,
        default=None,
        metavar="SECONDS",
        help="only collect orphaned temp files older than this (default: "
        "3600 — a live driver's in-flight temp file is never collected)",
    )
    sweep_gc.add_argument(
        "--purge-quarantine",
        action="store_true",
        help="also delete quarantined records (normally kept as evidence "
        "after `sweep repair`)",
    )
    for integrity_action, integrity_help in (
        (
            "verify",
            "checksum-verify store records; exit 1 if any are torn or "
            "tampered (legacy pre-checksum records are trusted)",
        ),
        (
            "repair",
            "verify, then move damaged records to .quarantine/ so the "
            "next sweep recomputes exactly those points",
        ),
    ):
        integrity_parser = sweep_actions.add_parser(
            integrity_action, help=integrity_help
        )
        integrity_parser.add_argument(
            "name",
            nargs="?",
            default=None,
            help="scenario to check (default: the whole store)",
        )
        integrity_parser.add_argument(
            "--store",
            default=".repro-store",
            help="result-store directory (default: %(default)s)",
        )

    worker = subparsers.add_parser(
        "worker", help="run a distributed-sweep trial worker"
    )
    worker_actions = worker.add_subparsers(dest="action", required=True)
    worker_serve = worker_actions.add_parser(
        "serve",
        help="serve trial spans over TCP for `--backend distributed` "
        "orchestrators (same codebase required on both sides)",
    )
    worker_serve.add_argument(
        "--bind",
        default="127.0.0.1:7070",
        help="host:port to listen on; port 0 picks an ephemeral port "
        "(default: %(default)s — loopback only; the protocol ships "
        "pickles, so bind only interfaces you control)",
    )
    worker_serve.add_argument(
        "--fault",
        default=None,
        metavar="SPEC",
        help="scripted fault injection (chaos testing): KIND@AFTER[:DELAY] "
        "with KIND in kill/drop/slow/hang, e.g. kill@2 = die abruptly "
        "when asked for a 3rd span",
    )
    worker_serve.add_argument(
        "--announce",
        default=None,
        metavar="HOST:PORT",
        help="announce this worker to a running sweep's membership "
        "registry (`--announce-bind` on the orchestrator side); retried "
        "in the background until the registry answers, and the worker "
        "retires itself on shutdown",
    )
    worker_pool = worker_actions.add_parser(
        "pool",
        help="launch a local pool of serve processes (or adopt a remote "
        "host list) and run until interrupted",
    )
    worker_pool.add_argument(
        "--workers",
        type=int,
        default=2,
        help="local worker processes to spawn (default: %(default)s)",
    )
    worker_pool.add_argument(
        "--bind-host",
        default="127.0.0.1",
        help="interface the spawned workers bind, each on an ephemeral "
        "port (default: %(default)s)",
    )
    worker_pool.add_argument(
        "--hosts-file",
        default=None,
        help="adopt already-running remote workers from a host-list file "
        "(one host:port per line) instead of spawning local ones; each "
        "is heartbeat-probed before the pool reports ready",
    )
    worker_pool.add_argument(
        "--fault",
        default=None,
        metavar="PLAN",
        help="scripted per-worker fault plan (chaos testing): "
        "IDX:KIND@AFTER[:DELAY],... e.g. '1:kill@2,2:slow@0:0.05'",
    )
    worker_pool.add_argument(
        "--addresses-file",
        default=None,
        help="write the ready pool's addresses (one host:port per line) "
        "to this file — consumable as `--workers @FILE`; rewritten "
        "atomically whenever --respawn replaces a dead worker",
    )
    worker_pool.add_argument(
        "--respawn",
        type=int,
        default=0,
        metavar="N",
        help="relaunch up to N dead local workers on fresh ephemeral "
        "ports (respawned workers carry no --fault; the addresses file, "
        "if any, is rewritten so watchers pick up the new members)",
    )

    serve = subparsers.add_parser(
        "serve",
        help="run the sweep-service daemon: accept concurrent sweep jobs "
        "over TCP, fair-share them over one backend, deduplicate "
        "overlapping points through the shared store",
    )
    serve.add_argument(
        "--bind",
        default="127.0.0.1:7272",
        help="host:port to listen on; port 0 picks an ephemeral port "
        "(default: %(default)s — loopback only)",
    )
    serve.add_argument(
        "--store",
        default=".repro-store",
        help="the result store every job shares (default: %(default)s)",
    )
    _add_backend_arguments(serve, sweep=True)

    jobs_parser = subparsers.add_parser(
        "jobs", help="talk to a running `repro serve` daemon"
    )
    jobs_actions = jobs_parser.add_subparsers(dest="action", required=True)

    def _add_at(parser):
        parser.add_argument(
            "--at",
            default="127.0.0.1:7272",
            metavar="HOST:PORT",
            help="the daemon's address (default: %(default)s)",
        )

    jobs_submit = jobs_actions.add_parser(
        "submit", help="submit a scenario sweep as a service job"
    )
    jobs_submit.add_argument("name", help="registered scenario name")
    _add_at(jobs_submit)
    jobs_submit.add_argument("--trials", type=int, default=None)
    jobs_submit.add_argument("--tolerance", type=float, default=None)
    jobs_submit.add_argument("--batch-size", type=int, default=None)
    jobs_submit.add_argument(
        "--kernel",
        default=None,
        help="pin the point runner's kernel lane (lands in cache keys, "
        "exactly as with `sweep run --kernel`)",
    )
    jobs_submit.add_argument(
        "--force",
        action="store_true",
        help="recompute every point, overwriting cached results",
    )
    jobs_submit.add_argument(
        "--watch",
        action="store_true",
        help="follow the job's progress stream to completion",
    )
    jobs_status = jobs_actions.add_parser(
        "status", help="show one job (or, without an id, every job)"
    )
    jobs_status.add_argument("job", nargs="?", default=None)
    _add_at(jobs_status)
    jobs_watch = jobs_actions.add_parser(
        "watch", help="stream a job's per-point progress to completion"
    )
    jobs_watch.add_argument("job")
    _add_at(jobs_watch)
    jobs_cancel = jobs_actions.add_parser(
        "cancel",
        help="cancel a job (cooperative: the point in flight finishes, "
        "the rest are dropped)",
    )
    jobs_cancel.add_argument("job")
    _add_at(jobs_cancel)

    trace = subparsers.add_parser(
        "trace", help="inspect recorded JSONL traces (the --trace output)"
    )
    trace_actions = trace.add_subparsers(dest="action", required=True)
    trace_summary = trace_actions.add_parser(
        "summary",
        help="render wall-clock per phase, per-worker span counts and "
        "utilization, the fault/membership timeline, and per-point CI "
        "half-width progression",
    )
    trace_summary.add_argument("file", help="trace file written by --trace")
    trace_validate = trace_actions.add_parser(
        "validate",
        help="check every line against the trace event schema "
        "(exit 1 with the first field-level violation)",
    )
    trace_validate.add_argument("file", help="trace file written by --trace")

    backends = subparsers.add_parser(
        "backends", help="inspect the execution-backend registry"
    )
    backends_actions = backends.add_subparsers(dest="action", required=True)
    backends_actions.add_parser(
        "list", help="list every registered execution backend"
    )

    cost = subparsers.add_parser(
        "cost", help="communication/storage cost per scheme"
    )
    cost.add_argument("-k", "--replication", type=int, default=3)
    cost.add_argument("-l", "--path-length", type=int, default=6)
    cost.add_argument("-n", "--share-rows", type=int, default=8)

    subparsers.add_parser("demo", help="run an end-to-end release on a small overlay")

    return parser


def _command_plan(args) -> int:
    from repro.core.planner import plan_configuration
    from repro.core.schemes.keyshare import plan_share_scheme
    from repro.core.tradeoff import pareto_frontier

    if args.scheme == "share":
        plan = plan_share_scheme(
            args.malicious_rate, args.budget, args.alpha, 1.0
        )
        print(
            f"share scheme: k={plan.replication} l={plan.path_length} "
            f"n={plan.shares_per_column} d~{plan.dead_share_estimate}"
        )
        print(
            f"  thresholds m (cols 2..l): {list(plan.thresholds)}"
        )
        print(
            f"  Rr={plan.release_resilience:.4f} Rd={plan.drop_resilience:.4f}"
        )
        return 0

    if args.frontier:
        if args.scheme == "central":
            print("the centralized scheme has a single configuration")
            return 1
        points = pareto_frontier(args.scheme, args.malicious_rate, args.budget)
        print(f"Pareto frontier ({args.scheme}, p={args.malicious_rate}, "
              f"budget={args.budget}): {len(points)} points")
        for point in points:
            print(
                f"  k={point.replication:3d} l={point.path_length:4d} "
                f"cost={point.cost:6d} Rr={point.release_resilience:.4f} "
                f"Rd={point.drop_resilience:.4f}"
            )
        return 0

    configuration = plan_configuration(
        args.scheme, args.malicious_rate, args.budget, target=args.target
    )
    print(
        f"{configuration.scheme}: k={configuration.replication} "
        f"l={configuration.path_length} cost={configuration.cost}"
    )
    print(
        f"  Rr={configuration.release_resilience:.4f} "
        f"Rd={configuration.drop_resilience:.4f} "
        f"({'meets' if configuration.meets_target else 'misses'} "
        f"target {configuration.target})"
    )
    return 0


def _command_figures(args) -> int:
    from repro.backends import get as get_backend
    from repro.experiments.engine import TrialEngine

    # One backend serves the whole figure; `with` covers long-lived
    # substrates (shm-pool keeps its pool, distributed its sockets).
    backend = get_backend(
        _backend_from_args(args, sweep=False), jobs=args.jobs, sweep=False
    )
    tracer = _open_tracer(args)
    if tracer is not None and hasattr(backend, "tracer"):
        backend.tracer = tracer
    try:
        with backend:
            engine = TrialEngine(
                executor=backend, tolerance=args.tolerance, tracer=tracer
            )
            return _render_figure(args, engine)
    finally:
        _finish_trace(tracer, getattr(args, "trace", None))


def _render_figure(args, engine) -> int:
    from repro.experiments.attack_resilience import (
        run_attack_resilience,
        series_by_scheme,
    )
    from repro.experiments.churn_resilience import panel, run_churn_resilience
    from repro.experiments.cost import run_share_cost, series_by_budget
    from repro.experiments.reporting import format_cost_table, format_series_table

    if args.figure in ("6a", "6b", "6c", "6d"):
        population = 10000 if args.figure in ("6a", "6b") else 100
        wants_cost = args.figure in ("6b", "6d")
        points = run_attack_resilience(
            population_size=population,
            trials=args.trials,
            measure=not wants_cost,
            engine=engine,
            kernel=args.kernel,
            batch_size=args.batch_size,
        )
        series = series_by_scheme(points)
        x_values = [entry[0] for entry in series["central"]]
        if wants_cost:
            print(
                format_cost_table(
                    f"Fig 6({args.figure[-1]}): required nodes (N={population})",
                    x_values,
                    {name: [e[3] for e in series[name]] for name in series},
                )
            )
        else:
            print(
                format_series_table(
                    f"Fig 6({args.figure[-1]}): attack resilience (N={population})",
                    "p",
                    x_values,
                    {name: [e[1] for e in series[name]] for name in series},
                )
            )
        return 0

    if args.figure == "7":
        points = run_churn_resilience(
            trials=args.trials, engine=engine, batch_size=args.batch_size
        )
        for alpha in (1.0, 2.0, 3.0, 5.0):
            data = panel(points, alpha)
            x_values = [p for p, _ in data["central"]]
            print(
                format_series_table(
                    f"Fig 7 (alpha={alpha:g})",
                    "p",
                    x_values,
                    {name: [v for _, v in data[name]] for name in data},
                )
            )
            print()
        return 0

    if args.figure == "8":
        points = run_share_cost(
            trials=args.trials, engine=engine, batch_size=args.batch_size
        )
        grouped = series_by_budget(points)
        budgets = sorted(grouped)
        x_values = [p for p, _, _ in grouped[budgets[0]]]
        print(
            format_series_table(
                "Fig 8 (alpha=3)",
                "p",
                x_values,
                {f"N={b}": [m for _, m, _ in grouped[b]] for b in budgets},
            )
        )
        return 0

    raise AssertionError("unreachable")


def _command_scenarios(args) -> int:
    from repro.scenarios import builtin_scenarios, get_scenario

    if args.action == "list":
        scenarios = builtin_scenarios()
        names = sorted(
            name
            for name, spec in scenarios.items()
            if args.kind is None or spec.kind == args.kind
        )
        if not names:
            print(f"no scenarios of kind {args.kind!r}")
            return 1
        width = max(len(name) for name in names)
        for name in names:
            spec = scenarios[name]
            print(
                f"{name.ljust(width)}  {spec.kind:<18} "
                f"{spec.point_count:4d} points  {spec.description}"
            )
        return 0

    try:
        spec = get_scenario(args.name)
    except ValueError as error:
        print(error)
        return 1
    if args.json:
        print(spec.to_json(indent=2))
        return 0
    print(f"{spec.name}: {spec.description}")
    print(f"  kind: {spec.kind}")
    print(f"  fixed: {spec.fixed}")
    for axis in spec.axes:
        print(f"  axis {axis.name}: {list(axis.values)}")
    print(
        f"  grid: {spec.point_count} points x {spec.trials} trials "
        f"(seed {spec.seed})"
    )
    if spec.tolerance is not None:
        print(f"  tolerance: {spec.tolerance}")
    if spec.schedule is not None:
        for rule in spec.schedule.rules:
            print(
                f"  tolerance rule: x{rule.scale:g} when "
                f"{rule.low:g} <= {rule.axis} <= {rule.high:g}"
            )
    return 0


def _command_sweep(args) -> int:
    from repro.experiments.reporting import format_sweep_table
    from repro.scenarios import ResultStore, SweepOrchestrator, get_scenario

    if args.action == "gc":
        return _sweep_gc(args)
    if args.action in ("verify", "repair"):
        return _sweep_integrity(args)
    if getattr(args, "submit", None):
        return _sweep_submit(args)
    try:
        spec = get_scenario(args.name)
    except ValueError as error:
        print(error)
        return 1
    if getattr(args, "kernel", None):
        # Pin the runner's kernel lane by landing it in the spec's fixed
        # params — it enters every point's cache key, so a pinned run
        # caches separately from the scenario's default lane.
        spec = dataclasses.replace(
            spec, fixed={**spec.fixed, "kernel": args.kernel}
        )
    store = ResultStore(args.store)
    already = store.count(spec.name)
    if args.action == "resume":
        if already == 0:
            print(
                f"nothing to resume: no cached points for {spec.name!r} in "
                f"{args.store} (starting fresh)"
            )
        _report_journal(args.store, spec.name)
    tracer = _open_tracer(args)
    orchestrator = SweepOrchestrator(
        store=store,
        jobs=args.jobs,
        backend=_backend_from_args(args, sweep=True),
        tolerance=args.tolerance,
        batch_size=args.batch_size,
        tracer=tracer,
        fallback=args.fallback,
        point_deadline=args.point_deadline,
        journal=not args.no_journal,
    )
    total = spec.point_count
    sweep_began = time.perf_counter()
    # The previous point's finish time, so each line reports *its* cost.
    last_mark = [sweep_began]

    def progress(point, record, from_cache):
        now = time.perf_counter()
        elapsed = now - last_mark[0]
        last_mark[0] = now
        status = "cached" if from_cache else "computed"
        trials_run = record["result"].get("trials_run", 0)
        if from_cache:
            detail = ""
        else:
            rate = trials_run / elapsed if elapsed > 1e-9 else 0.0
            detail = f" ({trials_run} trials, {rate:.0f}/s)"
        # flush: a piped `repro sweep run | tee` must stream per point,
        # not dump everything when the block buffer finally fills.
        print(
            f"  [{point.index + 1}/{total}] {record['point'] or spec.fixed} "
            f"{status}{detail} [{elapsed:.2f}s]",
            flush=True,
        )

    from repro.backends.membership import RegistryBusyError
    from repro.scenarios.journal import JournalBusyError

    try:
        report = orchestrator.run(
            spec,
            trials=args.trials,
            force=getattr(args, "force", False),
            progress=progress,
        )
    except (JournalBusyError, RegistryBusyError) as busy:
        # Another live driver owns the journal (or the announce
        # address): a clean refusal, not a traceback — concurrent
        # drivers must go through `repro serve`.
        raise SystemExit(str(busy)) from None
    finally:
        _finish_trace(tracer, getattr(args, "trace", None))
    wall = time.perf_counter() - sweep_began
    print(
        f"{spec.name}: {report.points} points — {report.computed} computed, "
        f"{report.cached} cached, {report.trials_run} new trials; "
        f"store: {args.store}",
        flush=True,
    )
    print(f"total wall-clock: {wall:.2f}s", flush=True)
    if report.backend_stats:
        # One greppable line for operators and the CI chaos job:
        # requeues, breaker trips, re-admissions, mid-sweep joins.
        rendered = " ".join(
            f"{key}={value}"
            for key, value in sorted(report.backend_stats.items())
        )
        print(f"backend stats: {rendered}")
    if spec.axes:
        print()
        print(
            format_sweep_table(
                f"{spec.name}: {spec.description}",
                spec.axis_names,
                list(report.records),
                value_key=spec.value_key,
                value_format="{:.0f}" if spec.value_key == "cost" else "{:.4f}",
            )
        )
    return 0


def _render_progress_frame(frame) -> None:
    """One ``watch`` frame as a per-point progress line (flushed)."""
    status = frame.get("status", "?")
    detail = ""
    if status == "computed":
        detail = (
            f" ({frame.get('trials_run', 0)} trials, "
            f"{frame.get('trials_per_second', 0.0):.0f}/s)"
        )
    half_width = frame.get("ci_half_width")
    if half_width is not None:
        detail += f" ci±{half_width:.4f}"
    print(
        f"  [{frame.get('done', '?')}/{frame.get('points', '?')}] "
        f"{frame.get('label', '')} {status}{detail} "
        f"[{frame.get('elapsed', 0.0):.2f}s]",
        flush=True,
    )


def _print_job_summary(final, address) -> None:
    """A finished job's one-line summary plus its stats line."""
    print(
        f"{final['scenario']}: {final['points']} points — "
        f"{final['computed']} computed, {final['cached']} cached, "
        f"{final['trials_run']} new trials; job {final['job']} at {address}",
        flush=True,
    )
    counters = {
        "dedup_hits": final.get("dedup_hits", 0),
    }
    from repro.service import service_stats

    try:
        counters.update(service_stats(address).get("stats", {}))
    except (OSError, ConnectionError, RuntimeError):
        pass  # the per-job dedup figure still prints
    rendered = " ".join(
        f"{key}={value}" for key, value in sorted(counters.items())
    )
    print(f"backend stats: {rendered}", flush=True)


def _sweep_submit(args) -> int:
    """`repro sweep run NAME --submit HOST:PORT`: delegate to the daemon."""
    for value, flag in (
        (args.backend, "--backend"),
        (args.workers, "--workers"),
        (args.pool, "--pool"),
        (args.jobs, "--jobs"),
        (args.chunk_size, "--chunk-size"),
        (args.announce_bind, "--announce-bind"),
        (args.watch_workers, "--watch-workers"),
        (args.fallback, "--fallback"),
        (args.point_deadline, "--point-deadline"),
        (args.no_journal, "--no-journal"),
        (args.trace, "--trace"),
    ):
        if value:
            raise SystemExit(
                f"{flag} cannot be combined with --submit — the daemon "
                "owns the backend, store, and journal policy"
            )
    from repro.service import submit_job, watch_job

    try:
        accepted = submit_job(
            args.submit,
            args.name,
            trials=args.trials,
            tolerance=args.tolerance,
            batch_size=args.batch_size,
            kernel=getattr(args, "kernel", None),
            force=getattr(args, "force", False),
        )
        job = accepted["job"]
        print(
            f"submitted {args.name!r} as {job} ({accepted['points']} "
            f"points) to {args.submit}",
            flush=True,
        )
        final = watch_job(args.submit, job, on_frame=_render_progress_frame)
    except (OSError, ConnectionError, RuntimeError) as error:
        raise SystemExit(f"sweep service at {args.submit}: {error}") from None
    _print_job_summary(final, args.submit)
    return 0 if final["status"] == "done" else 1


def _command_serve(args) -> int:
    """Foreground `repro serve`: run the daemon until signalled."""
    import asyncio
    import threading

    from repro.backends.wire import parse_address
    from repro.service import SweepService

    host, port = parse_address(args.bind)
    tracer = _open_tracer(args)
    service = SweepService(
        args.store,
        host=host,
        port=port,
        jobs=args.jobs,
        backend=_backend_from_args(args, sweep=True),
        tracer=tracer,
    )

    async def _main() -> None:
        ready = threading.Event()
        server_task = asyncio.ensure_future(service.serve(ready))
        while not ready.is_set() and not server_task.done():
            await asyncio.sleep(0.01)
        if not server_task.done():
            bound_host, bound_port = service.address
            print(
                f"repro sweep service ready: {bound_host}:{bound_port} "
                f"(store: {args.store})",
                flush=True,
            )
        await server_task

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:  # pragma: no cover - interactive path
        pass
    finally:
        _finish_trace(tracer, getattr(args, "trace", None))
    counters = service.metrics.counter_values("service.", strip=True)
    rendered = " ".join(
        f"{key}={value}" for key, value in sorted(counters.items())
    )
    print(f"repro sweep service: drained — {rendered or 'no jobs served'}")
    return 0


def _command_jobs(args) -> int:
    """`repro jobs submit|status|watch|cancel` — the daemon's client."""
    from repro.service import (
        cancel_job,
        job_status,
        service_stats,
        submit_job,
        watch_job,
    )

    try:
        if args.action == "submit":
            accepted = submit_job(
                args.at,
                args.name,
                trials=args.trials,
                tolerance=args.tolerance,
                batch_size=args.batch_size,
                kernel=args.kernel,
                force=args.force,
            )
            job = accepted["job"]
            print(
                f"submitted {args.name!r} as {job} "
                f"({accepted['points']} points)",
                flush=True,
            )
            if not args.watch:
                return 0
            final = watch_job(args.at, job, on_frame=_render_progress_frame)
            _print_job_summary(final, args.at)
            return 0 if final["status"] == "done" else 1
        if args.action == "watch":
            final = watch_job(
                args.at, args.job, on_frame=_render_progress_frame
            )
            _print_job_summary(final, args.at)
            return 0 if final["status"] == "done" else 1
        if args.action == "cancel":
            reply = cancel_job(args.at, args.job)
            verb = (
                "cancelled"
                if reply.get("cancelled")
                else f"already {reply.get('status')}"
            )
            print(f"{args.job}: {verb}")
            return 0
        # status
        if args.job is not None:
            reply = job_status(args.at, args.job)
            entry = reply["job"]
            print(
                f"{entry['job']}: {entry['scenario']} {entry['status']} — "
                f"{entry['served']}/{entry['points']} points "
                f"({entry['computed']} computed, {entry['cached']} cached, "
                f"{entry['dedup_hits']} dedup)"
                + (f"; error: {entry['error']}" if entry.get("error") else "")
            )
            return 0
        reply = job_status(args.at)
        entries = reply.get("jobs", [])
        if not entries:
            print("no jobs")
        for entry in entries:
            print(
                f"{entry['job']}  {entry['scenario']:<20} "
                f"{entry['status']:<10} {entry['served']}/{entry['points']}"
            )
        stats = service_stats(args.at).get("stats", {})
        if stats:
            rendered = " ".join(
                f"{key}={value}" for key, value in sorted(stats.items())
            )
            print(f"service stats: {rendered}")
        return 0
    except (OSError, ConnectionError, RuntimeError) as error:
        raise SystemExit(f"sweep service at {args.at}: {error}") from None


def _report_journal(store_root, scenario: str) -> None:
    """Print a resume's journal summary: committed vs. mid-flight points."""
    from repro.scenarios import SweepJournal

    status = SweepJournal.status(store_root, scenario)
    if status is None:
        return
    midflight = status["midflight"]
    print(
        f"journal: sweep {status['status']} — {status['committed']} "
        f"point(s) committed, {len(midflight)} mid-flight"
        + (" (will be recomputed)" if midflight else ""),
        flush=True,
    )


def _sweep_integrity(args) -> int:
    """`repro sweep verify` / `repro sweep repair`."""
    from repro.scenarios import ResultStore

    store = ResultStore(args.store)
    if args.action == "repair":
        report = store.repair(args.name)
    else:
        report = store.verify(args.name)
    scope = f" [{args.name}]" if args.name else ""
    print(
        f"{args.store}{scope}: scanned {report.scanned} record(s) — "
        f"{report.ok} ok, {report.legacy} legacy, "
        f"{len(report.corrupt)} corrupt, {len(report.mismatched)} "
        f"mismatched, {len(report.orphans)} orphaned tmp"
    )
    for label, paths in (
        ("corrupt", report.corrupt),
        ("mismatched", report.mismatched),
        ("orphaned tmp", report.orphans),
    ):
        for path in paths:
            print(f"  {label}: {path}")
    if args.action == "repair":
        for path in report.quarantined:
            print(f"  quarantined -> {path}")
        if report.quarantined:
            print(
                f"{len(report.quarantined)} record(s) quarantined; the next "
                "sweep run/resume recomputes exactly those points"
            )
        return 0
    if not report.clean:
        print("store is NOT clean — run `repro sweep repair` to quarantine")
        return 1
    print("store is clean")
    return 0


def _sweep_gc(args) -> int:
    from repro.scenarios import ResultStore
    from repro.scenarios.store import DEFAULT_TMP_GRACE_SECONDS

    grace = (
        args.tmp_grace if args.tmp_grace is not None
        else DEFAULT_TMP_GRACE_SECONDS
    )
    if grace < 0:
        raise SystemExit("--tmp-grace must be >= 0 seconds")
    report = ResultStore(args.store).gc(
        keep_latest=args.keep_latest,
        dry_run=args.dry_run,
        tmp_grace_seconds=grace,
        purge_quarantine=args.purge_quarantine,
    )
    verb = "would remove" if args.dry_run else "removed"
    quarantine_note = (
        f", {len(report.quarantined)} quarantined"
        if args.purge_quarantine
        else ""
    )
    print(
        f"{args.store}: scanned {report.scanned} record(s), kept "
        f"{report.kept}; {verb} {len(report.orphans)} orphan(s), "
        f"{len(report.corrupt)} corrupt, {len(report.stale)} stale, "
        f"{len(report.journal_orphans)} orphaned journal(s)"
        f"{quarantine_note}"
        + (
            f" (latest generation {report.latest_generation})"
            if report.latest_generation is not None
            else ""
        )
    )
    if report.fresh_tmp:
        print(
            f"  kept {len(report.fresh_tmp)} fresh tmp file(s) younger than "
            f"{grace:g}s (possibly a live driver's in-flight write)"
        )
    if report.fresh_journals:
        print(
            f"  kept {len(report.fresh_journals)} recordless journal(s) "
            f"younger than {grace:g}s (possibly a sweep that has not "
            f"committed its first point yet)"
        )
    for path in report.removed_paths():
        print(f"  {verb} {path}")
    return 0


def _command_worker(args) -> int:
    if args.action == "pool":
        return _worker_pool(args)
    from repro.backends.faults import FaultSpec
    from repro.backends.wire import parse_address
    from repro.backends.worker import serve

    host, port = parse_address(args.bind)
    fault = None
    if args.fault:
        try:
            fault = FaultSpec.parse(args.fault)
        except ValueError as error:
            raise SystemExit(str(error)) from None
    if args.announce:
        try:
            parse_address(args.announce)
        except ValueError as error:
            raise SystemExit(str(error)) from None
    serve(host, port, fault=fault, announce=args.announce)
    return 0


def _worker_pool(args) -> int:
    """Foreground `repro worker pool`: stand up workers, wait, tear down."""
    import signal
    import time

    from repro.backends.pool import WorkerPool, write_addresses_file

    if args.respawn < 0:
        raise SystemExit("--respawn must be a non-negative integer")
    if args.hosts_file is not None:
        if args.fault:
            raise SystemExit("--fault only applies to spawned local workers")
        if args.respawn:
            raise SystemExit("--respawn only applies to spawned local workers")
        pool = WorkerPool.from_hosts_file(args.hosts_file, probe=True)
    else:
        pool = WorkerPool(
            workers=args.workers,
            host=args.bind_host,
            fault_plan=args.fault,
            max_respawns=args.respawn,
        )

    def _terminate(signum, frame):  # pragma: no cover - signal path
        raise KeyboardInterrupt

    previous_handler = signal.signal(signal.SIGTERM, _terminate)
    try:
        with pool:
            addresses = pool.addresses
            print(f"repro worker pool ready: {','.join(addresses)}", flush=True)
            if args.addresses_file:
                write_addresses_file(args.addresses_file, addresses)
            reported = set()
            while True:
                time.sleep(0.5)
                codes = pool.poll()
                for index, code in enumerate(codes):
                    # Announce each death once: operators (and the CI
                    # chaos job) read this to confirm a worker really
                    # went down rather than the sweep merely passing.
                    if code is not None and index not in reported:
                        reported.add(index)
                        print(
                            f"repro worker pool: worker {index} exited "
                            f"(code {code})",
                            flush=True,
                        )
                if args.respawn:
                    replaced = pool.respawn_dead()
                    if replaced:
                        for old_address, new_address in replaced:
                            print(
                                f"repro worker pool: respawned {old_address} "
                                f"as {new_address}",
                                flush=True,
                            )
                        # Respawned slots may die again; let the loop
                        # report those deaths too.
                        reported.clear()
                        if args.addresses_file:
                            write_addresses_file(
                                args.addresses_file, pool.addresses
                            )
                        codes = pool.poll()
                if pool.local and codes and all(
                    code is not None for code in codes
                ):
                    print("repro worker pool: every worker exited", flush=True)
                    return 1
    except KeyboardInterrupt:
        print("repro worker pool: shutting down", flush=True)
        return 0
    finally:
        signal.signal(signal.SIGTERM, previous_handler)


def _command_trace(args) -> int:
    from repro.obs import (
        TraceSchemaError,
        format_trace_summary,
        iter_trace,
        summarize_trace,
    )

    if args.action == "validate":
        count = 0
        truncated_at = []

        def note_truncation(line_number, _line):
            truncated_at.append(line_number)

        try:
            for _line_number, _record in iter_trace(
                args.file, on_truncated=note_truncation
            ):
                count += 1
        except OSError as error:
            print(f"cannot read trace: {error}")
            return 1
        except TraceSchemaError as error:
            print(f"invalid trace: {error}")
            return 1
        if truncated_at:
            # A torn tail is a crash artifact, not schema rot: report it
            # plainly and keep exit 0 so post-mortem pipelines proceed.
            print(
                f"{args.file}: {count} record(s), schema OK; final line "
                f"{truncated_at[0]} truncated (writer died mid-write) — "
                f"preceding records are intact"
            )
            return 0
        print(f"{args.file}: {count} record(s), schema OK")
        return 0

    try:
        summary = summarize_trace(args.file)
    except OSError as error:
        print(f"cannot read trace: {error}")
        return 1
    except TraceSchemaError as error:
        print(f"invalid trace: {error}")
        return 1
    print(format_trace_summary(summary, args.file))
    return 0


def _command_backends(args) -> int:
    from repro.backends import list_backends

    entries = list_backends()
    width = max(len(entry["name"]) for entry in entries)
    for entry in entries:
        flags = [
            flag
            for flag, label in (
                ("shared-memory", "supports_shared_memory"),
                ("remote", "supports_remote"),
                ("fault-tolerant", "supports_fault_tolerance"),
                ("elastic", "supports_elastic_membership"),
            )
            if entry[label]
        ]
        suffix = f"  [{', '.join(flags)}]" if flags else ""
        availability = "" if entry["available"] else "  (unavailable here)"
        print(
            f"{entry['name'].ljust(width)}  {entry['description']}"
            f"{suffix}{availability}"
        )
        if entry["options"]:
            print(f"{' ' * width}  options: {', '.join(entry['options'])}")
    return 0


def _command_cost(args) -> int:
    from repro.core.sizing import centralized_cost, key_share_cost, multipath_cost

    print(centralized_cost())
    print(multipath_cost(args.replication, args.path_length, joint=False))
    print(multipath_cost(args.replication, args.path_length, joint=True))
    print(key_share_cost(args.share_rows, args.path_length))
    return 0


def _command_demo(args) -> int:
    from repro.cloud import CloudStore
    from repro.core import DataReceiver, DataSender, ReleaseTimeline
    from repro.core.protocol import ProtocolContext, install_holders
    from repro.dht import build_network
    from repro.util import RandomSource

    overlay = build_network(120, seed=11)
    install_holders(overlay, ProtocolContext(network=overlay.network))
    alice = DataSender(
        overlay.nodes[overlay.node_ids[0]],
        CloudStore(overlay.loop.clock),
        RandomSource(42, "alice"),
    )
    bob = DataReceiver(overlay.nodes[overlay.node_ids[1]])
    timeline = ReleaseTimeline(0.0, 600.0, 3)
    result = alice.send_multipath(
        b"hello from the past", timeline, bob.node_id, replication=3, joint=True
    )
    overlay.loop.run(until=599.0)
    print(f"t=599: receiver has key: {bob.has_key(result.key_id)}")
    overlay.loop.run()
    message = bob.decrypt_from_cloud(alice.cloud, result.blob.blob_id, result.key_id)
    print(f"t={overlay.loop.clock.now:.1f}: decrypted {message!r}")
    return 0


_COMMANDS = {
    "plan": _command_plan,
    "figures": _command_figures,
    "scenarios": _command_scenarios,
    "sweep": _command_sweep,
    "serve": _command_serve,
    "jobs": _command_jobs,
    "worker": _command_worker,
    "trace": _command_trace,
    "backends": _command_backends,
    "cost": _command_cost,
    "demo": _command_demo,
}


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
