"""Structured trace recording.

Protocol components emit trace events (package forwarded, layer decrypted,
node died, attack succeeded) into a :class:`TraceRecorder`.  Integration
tests assert on the trace — e.g. "the secret key never appears in any trace
event before the release time" — and the examples print human-readable
timelines from it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional


@dataclass(frozen=True)
class TraceEvent:
    """A single recorded happening, at a virtual timestamp."""

    time: float
    category: str
    message: str
    details: Dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        return f"[t={self.time:12.3f}] {self.category:>18}: {self.message}"


class TraceRecorder:
    """Append-only trace sink with simple category filtering."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._events: List[TraceEvent] = []

    def record(
        self,
        time: float,
        category: str,
        message: str,
        **details: Any,
    ) -> None:
        """Append one event (no-op when disabled, for hot Monte-Carlo loops)."""
        if not self.enabled:
            return
        self._events.append(
            TraceEvent(time=time, category=category, message=message, details=details)
        )

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    @property
    def events(self) -> List[TraceEvent]:
        return list(self._events)

    def filter(self, category: Optional[str] = None) -> List[TraceEvent]:
        """Events of one category (or all when category is None)."""
        if category is None:
            return self.events
        return [event for event in self._events if event.category == category]

    def first(self, category: str) -> Optional[TraceEvent]:
        """Earliest event in a category, or None."""
        for event in self._events:
            if event.category == category:
                return event
        return None

    def clear(self) -> None:
        self._events.clear()

    def format_timeline(self, limit: Optional[int] = None) -> str:
        """Render the trace as a printable timeline (used by the examples)."""
        events = self._events if limit is None else self._events[:limit]
        lines = [str(event) for event in events]
        if limit is not None and len(self._events) > limit:
            lines.append(f"... ({len(self._events) - limit} more events)")
        return "\n".join(lines)
