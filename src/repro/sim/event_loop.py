"""The discrete-event loop at the heart of the simulation.

Design points:

- Events are ``(time, sequence, callback)`` triples in a binary heap; the
  sequence number breaks timestamp ties by insertion order, which makes the
  whole simulation deterministic.
- Cancellation is lazy: :meth:`ScheduledHandle.cancel` marks the event and
  the loop skips it on pop, so cancel is O(1).
- The loop never advances past an optional horizon, letting experiments say
  "run until the release time plus slack" without draining the queue.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.sim.clock import Clock

Callback = Callable[[], None]


@dataclass(order=True)
class Event:
    """A scheduled event; ordering is (time, sequence)."""

    time: float
    sequence: int
    callback: Callback = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    label: str = field(default="", compare=False)


class ScheduledHandle:
    """Handle returned by :meth:`EventLoop.call_at`; supports cancellation."""

    def __init__(self, event: Event) -> None:
        self._event = event

    @property
    def time(self) -> float:
        return self._event.time

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    def cancel(self) -> None:
        """Mark the event so the loop drops it instead of firing it."""
        self._event.cancelled = True


class EventLoop:
    """A deterministic discrete-event scheduler."""

    def __init__(self, clock: Optional[Clock] = None) -> None:
        self.clock = clock if clock is not None else Clock()
        self._heap: List[Event] = []
        self._sequence = itertools.count()
        self._processed = 0

    # -- scheduling --------------------------------------------------------

    def call_at(self, timestamp: float, callback: Callback, label: str = "") -> ScheduledHandle:
        """Schedule ``callback`` to run at absolute virtual ``timestamp``."""
        if timestamp < self.clock.now:
            raise ValueError(
                f"cannot schedule at {timestamp}, clock already at {self.clock.now}"
            )
        event = Event(
            time=float(timestamp),
            sequence=next(self._sequence),
            callback=callback,
            label=label,
        )
        heapq.heappush(self._heap, event)
        return ScheduledHandle(event)

    def call_later(self, delay: float, callback: Callback, label: str = "") -> ScheduledHandle:
        """Schedule ``callback`` after a non-negative ``delay``."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        return self.call_at(self.clock.now + delay, callback, label=label)

    # -- execution ---------------------------------------------------------

    @property
    def pending_count(self) -> int:
        """Number of not-yet-fired, not-cancelled events."""
        return sum(1 for event in self._heap if not event.cancelled)

    @property
    def processed_count(self) -> int:
        """Number of events fired so far."""
        return self._processed

    def peek_next_time(self) -> Optional[float]:
        """Timestamp of the next live event, or None if the queue is empty."""
        self._discard_cancelled_head()
        return self._heap[0].time if self._heap else None

    def step(self) -> bool:
        """Fire the next event.  Returns False when the queue is empty."""
        self._discard_cancelled_head()
        if not self._heap:
            return False
        event = heapq.heappop(self._heap)
        self.clock.advance_to(event.time)
        self._processed += 1
        event.callback()
        return True

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Run events until the queue drains, the horizon, or an event budget.

        Parameters
        ----------
        until:
            Optional virtual-time horizon.  Events at exactly ``until`` still
            fire; later ones stay queued and the clock stops at ``until``.
        max_events:
            Optional safety budget; mainly for tests guarding against
            run-away feedback loops.

        Returns the number of events fired by this call.
        """
        fired = 0
        while True:
            if max_events is not None and fired >= max_events:
                break
            next_time = self.peek_next_time()
            if next_time is None:
                break
            if until is not None and next_time > until:
                self.clock.advance_to(until)
                break
            self.step()
            fired += 1
        return fired

    def _discard_cancelled_head(self) -> None:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
