"""Network latency models for the simulated transport.

The paper's evaluation is insensitive to absolute latency (holding periods
are hours-to-months while hops are milliseconds), but the DHT substrate
still models per-message delay so that lookup concurrency and timeout logic
behave realistically and so tests can assert ordering properties.
"""

from __future__ import annotations

from typing import Optional

from repro.util.rng import RandomSource
from repro.util.validation import check_positive


class LatencyModel:
    """Interface: one-way delay in seconds for a message between two nodes."""

    def delay(self, sender_id: int, receiver_id: int) -> float:
        raise NotImplementedError


class ConstantLatency(LatencyModel):
    """Fixed one-way delay; the default for protocol unit tests."""

    def __init__(self, seconds: float = 0.05) -> None:
        check_positive(seconds, "seconds", allow_zero=True)
        self.seconds = float(seconds)

    def delay(self, sender_id: int, receiver_id: int) -> float:
        return self.seconds

    def __repr__(self) -> str:
        return f"ConstantLatency({self.seconds})"


class UniformLatency(LatencyModel):
    """Uniformly random delay in ``[low, high]`` drawn per message."""

    def __init__(
        self,
        low: float = 0.01,
        high: float = 0.2,
        rng: Optional[RandomSource] = None,
    ) -> None:
        check_positive(low, "low", allow_zero=True)
        check_positive(high, "high")
        if high < low:
            raise ValueError(f"high ({high}) must be >= low ({low})")
        self.low = float(low)
        self.high = float(high)
        self._rng = rng if rng is not None else RandomSource(0x1A7E, "latency")

    def delay(self, sender_id: int, receiver_id: int) -> float:
        return self._rng.uniform(self.low, self.high)

    def __repr__(self) -> str:
        return f"UniformLatency({self.low}, {self.high})"
