"""Deterministic discrete-event simulator.

The DHT, the churn process and the self-emerging key protocol all run on a
single :class:`~repro.sim.event_loop.EventLoop`: a priority queue of timed
events with a monotonically advancing virtual clock.  Determinism is total —
events at the same timestamp fire in insertion order, and all randomness
comes from :class:`~repro.util.rng.RandomSource` streams — so every test and
experiment is exactly reproducible from its seed.
"""

from repro.sim.clock import Clock
from repro.sim.event_loop import Event, EventLoop, ScheduledHandle
from repro.sim.latency import ConstantLatency, LatencyModel, UniformLatency
from repro.sim.trace import TraceEvent, TraceRecorder

__all__ = [
    "EventLoop",
    "Event",
    "ScheduledHandle",
    "Clock",
    "LatencyModel",
    "ConstantLatency",
    "UniformLatency",
    "TraceRecorder",
    "TraceEvent",
]
