"""Virtual clock.

Separated from the event loop so components that only need to *read* time
(holders computing their forwarding deadline, the churn process sampling a
death time) can hold a :class:`Clock` reference without being able to
schedule or run events.
"""

from __future__ import annotations


class Clock:
    """A monotonically advancing virtual clock measured in seconds."""

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ValueError(f"start time must be non-negative, got {start}")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    def advance_to(self, timestamp: float) -> None:
        """Move the clock forward; rejects travel into the past."""
        if timestamp < self._now:
            raise ValueError(
                f"cannot move clock backwards from {self._now} to {timestamp}"
            )
        self._now = float(timestamp)

    def __repr__(self) -> str:
        return f"Clock(now={self._now})"
