"""repro - Timed-Release of Self-Emerging Data Using Distributed Hash Tables.

A from-scratch Python reproduction of Li & Palanisamy, ICDCS 2017: securely
hiding a data-decryption key inside a DHT so that it automatically emerges
at a predetermined release time, with resilience against release-ahead and
drop attacks and against DHT churn.

Quick tour (see README.md for a runnable quickstart):

- :mod:`repro.core` - the four self-emerging key routing schemes, the
  closed-form resilience analysis, Algorithm 1, the onion/package formats
  and the executable holder protocol.
- :mod:`repro.dht` - the Kademlia-style overlay substrate.
- :mod:`repro.crypto` - cipher, Shamir sharing, key handling.
- :mod:`repro.sim` - the deterministic discrete-event simulator.
- :mod:`repro.churn` - exponential lifetime churn and replica repair.
- :mod:`repro.adversary` - Sybil populations and the two attack models.
- :mod:`repro.cloud` - the encrypted-blob store.
- :mod:`repro.experiments` - Monte-Carlo drivers reproducing every figure
  of the paper's evaluation (Figs. 6, 7, 8).
- :mod:`repro.backends` - the unified execution layer: one
  ``ExecutionBackend`` protocol over serial / chunked / fork-pool /
  shm-pool / distributed (TCP worker) substrates.
- :mod:`repro.scenarios` - declarative sweep specs, orchestrator, and the
  content-addressed result store.
- :mod:`repro.api` - the public façade: ``run_scenario`` / ``run_sweep`` /
  ``load_results`` / ``list_backends`` without touching internals.
"""

__version__ = "1.0.0"

from repro.core import (
    CentralizedScheme,
    DataReceiver,
    DataSender,
    KeyShareScheme,
    NodeDisjointScheme,
    NodeJointScheme,
    ReleaseTimeline,
    plan_configuration,
)

__all__ = [
    "__version__",
    "ReleaseTimeline",
    "CentralizedScheme",
    "NodeDisjointScheme",
    "NodeJointScheme",
    "KeyShareScheme",
    "DataSender",
    "DataReceiver",
    "plan_configuration",
]
