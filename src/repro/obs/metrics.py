"""The metrics registry: named counters, gauges, and histograms.

One :class:`MetricsRegistry` is the numeric half of the observability
spine (:mod:`repro.obs`): subsystems register instruments by dotted name
and bump them from any thread; :meth:`MetricsRegistry.snapshot` renders
the whole registry as a JSON-safe dict, and :meth:`MetricsRegistry.merge`
folds another snapshot back in — which is how the distributed backend
absorbs worker-side telemetry (the ``stats`` wire op) into the driver's
registry under a ``worker.<address>.`` prefix.

**Naming convention.**  Dotted lowercase paths, most-general first:
``backend.spans_completed``, ``worker.127.0.0.1:7070.ops.run``,
``engine.ci_checks``.  Counters count events (monotonic ints), gauges
hold a last-written value, histograms summarise observations
(count/sum/min/max — enough for service-time accounting without bucket
configuration).

Everything is thread-safe behind one registry lock; instruments are
cheap handles, so hot paths should hold onto the instrument rather than
re-looking it up by name per increment.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Mapping, Optional


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str, lock: threading.Lock) -> None:
        self.name = name
        self._value = 0
        self._lock = lock

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self._value += int(amount)

    @property
    def value(self) -> int:
        with self._lock:
            return self._value


class Gauge:
    """A last-write-wins float."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str, lock: threading.Lock) -> None:
        self.name = name
        self._value = 0.0
        self._lock = lock

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """A count/sum/min/max summary of observations.

    Deliberately bucket-free: the consumers here want service-time totals
    and extremes (mean = sum/count), not quantile estimation, and
    bucket-free summaries merge exactly.
    """

    __slots__ = ("name", "count", "sum", "min", "max", "_lock")

    def __init__(self, name: str, lock: threading.Lock) -> None:
        self.name = name
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._lock = lock

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.count += 1
            self.sum += value
            self.min = value if self.min is None else min(self.min, value)
            self.max = value if self.max is None else max(self.max, value)

    def _merge_summary(self, summary: Mapping[str, Any]) -> None:
        with self._lock:
            count = int(summary.get("count", 0))
            if count <= 0:
                return
            self.count += count
            self.sum += float(summary.get("sum", 0.0))
            for bound, pick in (("min", min), ("max", max)):
                other = summary.get(bound)
                if other is None:
                    continue
                current = getattr(self, bound)
                setattr(
                    self,
                    bound,
                    float(other) if current is None else pick(
                        current, float(other)
                    ),
                )

    def summary(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "count": self.count,
                "sum": self.sum,
                "min": self.min,
                "max": self.max,
            }

    @property
    def mean(self) -> Optional[float]:
        with self._lock:
            return self.sum / self.count if self.count else None


class MetricsRegistry:
    """A named collection of counters, gauges, and histograms.

    ``counter``/``gauge``/``histogram`` are get-or-create (a name is one
    instrument forever; asking for it under a different type raises),
    ``snapshot``/``merge`` are the serialisation pair, and
    ``counter_values(prefix)`` is the dict view ``backend.stats`` is
    built on.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def _get(self, table: Dict[str, Any], name: str, factory) -> Any:
        if not name or not isinstance(name, str):
            raise ValueError(f"metric name must be a non-empty str, got {name!r}")
        with self._lock:
            instrument = table.get(name)
            if instrument is None:
                for other in (self._counters, self._gauges, self._histograms):
                    if other is not table and name in other:
                        raise ValueError(
                            f"metric {name!r} already registered as a "
                            f"different instrument type"
                        )
                instrument = factory(name, self._lock)
                table[name] = instrument
            return instrument

    def counter(self, name: str) -> Counter:
        return self._get(self._counters, name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(self._gauges, name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(self._histograms, name, Histogram)

    # -- views ---------------------------------------------------------------

    def counter_values(self, prefix: str = "", strip: bool = False) -> Dict[str, int]:
        """Counter name → value for counters under ``prefix``.

        ``strip=True`` removes the prefix from the returned keys — how
        ``DistributedBackend.stats`` stays the short-keyed dict every
        existing consumer (tests, the CLI stats line) reads.
        """
        with self._lock:
            return {
                (name[len(prefix):] if strip else name): counter._value
                for name, counter in sorted(self._counters.items())
                if name.startswith(prefix)
            }

    def snapshot(self) -> Dict[str, Any]:
        """The whole registry as one JSON-safe, mergeable dict."""
        with self._lock:
            counters = {
                name: counter._value
                for name, counter in sorted(self._counters.items())
            }
            gauges = {
                name: gauge._value
                for name, gauge in sorted(self._gauges.items())
            }
            histogram_items = sorted(self._histograms.items())
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": {
                name: histogram.summary() for name, histogram in histogram_items
            },
        }

    def merge(self, snapshot: Mapping[str, Any], prefix: str = "") -> None:
        """Fold a :meth:`snapshot` into this registry.

        Counters add, histograms merge their summaries exactly, gauges
        take the snapshot's value (last write wins).  ``prefix`` is
        prepended to every incoming name — merging a worker's registry
        under ``worker.<address>.`` keeps fleets' metrics separable.
        Unknown shapes are ignored rather than raised on: a newer worker
        may ship instrument kinds an older driver does not know.
        """
        for name, value in (snapshot.get("counters") or {}).items():
            if isinstance(value, int) and not isinstance(value, bool):
                self.counter(prefix + name).inc(value)
        for name, value in (snapshot.get("gauges") or {}).items():
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                self.gauge(prefix + name).set(value)
        for name, summary in (snapshot.get("histograms") or {}).items():
            if isinstance(summary, Mapping):
                self.histogram(prefix + name)._merge_summary(summary)
