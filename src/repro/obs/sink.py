"""The JSONL trace sink, and the event schema it writes.

One trace = one JSON object per line.  The first line is a ``meta``
record carrying :data:`SCHEMA_VERSION`; every following line is a
``span`` or ``event`` record (see :mod:`repro.obs.trace`).  The sink
writes line-buffered to ``<path>.tmp`` and atomically renames to
``path`` on close — a torn run leaves a ``.tmp`` file behind, never a
half-written trace masquerading as a complete one (the same tmp +
``os.replace`` discipline as the result store and the pool's addresses
file).

Schema (version 1)::

    {"type": "meta",  "schema": 1, "created_unix": <float>}
    {"type": "span",  "name": str, "id": int>0, "parent": int|null,
     "start": float, "end": float>=start, "attrs": {...}}
    {"type": "event", "name": str, "t": float, "span": int|null,
     "attrs": {...}}

:func:`validate_record` checks one parsed line against that schema and
:func:`read_trace` loads (and validates) a whole file — the CI
``trace-smoke`` job and ``repro trace validate`` are built on them.
"""

from __future__ import annotations

import json
import os
import time
import warnings
from pathlib import Path
from typing import Any, Callable, Dict, Iterator, List, Mapping, Optional, Tuple

#: Bumped on incompatible record-shape changes; the ``meta`` line carries it.
SCHEMA_VERSION = 1

_RECORD_TYPES = ("meta", "span", "event")


class TraceSchemaError(ValueError):
    """A trace line that does not conform to the event schema."""


class TraceTruncationWarning(UserWarning):
    """The final trace line is torn — a writer died mid-write.

    Distinct from :class:`TraceSchemaError` on purpose: a torn tail is
    the *expected* artifact of a crashed driver (the sink is
    line-buffered, so only the very last line can be partial), while an
    undecodable line anywhere else means the file is not a trace at all.
    """


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise TraceSchemaError(message)


def validate_record(record: Any) -> Dict[str, Any]:
    """Check one parsed trace line against the schema; returns it.

    Raises :class:`TraceSchemaError` with a field-level message on any
    violation — the CI job surfaces these verbatim.
    """
    _require(isinstance(record, dict), f"line must be a JSON object, got {type(record).__name__}")
    kind = record.get("type")
    _require(kind in _RECORD_TYPES, f"type must be one of {_RECORD_TYPES}, got {kind!r}")
    if kind == "meta":
        schema = record.get("schema")
        _require(
            isinstance(schema, int) and not isinstance(schema, bool) and schema >= 1,
            f"meta.schema must be a positive int, got {schema!r}",
        )
        return record
    name = record.get("name")
    _require(isinstance(name, str) and bool(name), f"{kind}.name must be a non-empty str, got {name!r}")
    attrs = record.get("attrs", {})
    _require(isinstance(attrs, dict), f"{kind}.attrs must be an object, got {type(attrs).__name__}")
    if kind == "span":
        span_id = record.get("id")
        _require(
            isinstance(span_id, int) and not isinstance(span_id, bool) and span_id > 0,
            f"span.id must be a positive int, got {span_id!r}",
        )
        parent = record.get("parent")
        _require(
            parent is None
            or (isinstance(parent, int) and not isinstance(parent, bool) and parent > 0),
            f"span.parent must be null or a positive int, got {parent!r}",
        )
        start, end = record.get("start"), record.get("end")
        for label, value in (("start", start), ("end", end)):
            _require(
                isinstance(value, (int, float)) and not isinstance(value, bool),
                f"span.{label} must be a number, got {value!r}",
            )
        _require(end >= start, f"span.end ({end}) precedes span.start ({start})")
        return record
    # event
    t = record.get("t")
    _require(
        isinstance(t, (int, float)) and not isinstance(t, bool),
        f"event.t must be a number, got {t!r}",
    )
    span = record.get("span")
    _require(
        span is None
        or (isinstance(span, int) and not isinstance(span, bool) and span > 0),
        f"event.span must be null or a positive int, got {span!r}",
    )
    return record


def iter_trace(
    path,
    on_truncated: Optional[Callable[[int, str], None]] = None,
) -> Iterator[Tuple[int, Dict[str, Any]]]:
    """Yield ``(line_number, validated_record)`` for every trace line.

    Raises :class:`TraceSchemaError` (with the line number in the
    message) on the first invalid line, including a first line that is
    not a ``meta`` record or a meta schema newer than this reader.

    An undecodable, newline-less *final* line is different: that is the
    signature of a writer killed mid-write (the sink is line-buffered,
    so every completed line carries its newline and earlier lines are
    always whole).  Every complete record is still yielded; the torn
    tail is reported through ``on_truncated(line_number, line)`` when
    given, or a :class:`TraceTruncationWarning` otherwise — never an
    exception, so a crashed run's trace stays readable for post-mortems.
    """
    with open(path, "r", encoding="utf-8") as handle:
        lines = handle.readlines()
    last_line_number = len(lines)
    torn_tail = bool(lines) and not lines[-1].endswith("\n")
    for line_number, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            parsed = json.loads(line)
        except json.JSONDecodeError as error:
            if torn_tail and line_number == last_line_number:
                if on_truncated is not None:
                    on_truncated(line_number, line)
                else:
                    warnings.warn(
                        TraceTruncationWarning(
                            f"{path}:{line_number}: truncated final line "
                            f"(writer died mid-write); preceding records "
                            f"are intact"
                        ),
                        stacklevel=2,
                    )
                return
            raise TraceSchemaError(
                f"{path}:{line_number}: undecodable JSON: {error}"
            ) from error
        try:
            record = validate_record(parsed)
        except TraceSchemaError as error:
            raise TraceSchemaError(
                f"{path}:{line_number}: {error}"
            ) from None
        if line_number == 1:
            if record.get("type") != "meta":
                raise TraceSchemaError(
                    f"{path}:1: first line must be the meta record"
                )
            if record["schema"] > SCHEMA_VERSION:
                raise TraceSchemaError(
                    f"{path}:1: trace schema {record['schema']} is newer "
                    f"than this reader ({SCHEMA_VERSION})"
                )
        yield line_number, record


def read_trace(
    path,
    on_truncated: Optional[Callable[[int, str], None]] = None,
) -> List[Dict[str, Any]]:
    """Load and validate a whole trace file (meta line included).

    A torn final line is tolerated exactly as in :func:`iter_trace` —
    complete records are returned, the tail is warned about (or handed
    to ``on_truncated``).
    """
    return [record for _, record in iter_trace(path, on_truncated)]


class JsonlSink:
    """Line-buffered JSONL writer finalised by tmp + ``os.replace``.

    The meta line is written on construction, so even an empty run
    produces a valid (if span-free) trace.  ``emit`` raising (disk full,
    permissions yanked) is the *caller's* cue to degrade —
    :class:`~repro.obs.trace.Tracer` turns it into a one-time warning.
    """

    def __init__(self, path) -> None:
        self.path = Path(path)
        if self.path.parent and not self.path.parent.exists():
            self.path.parent.mkdir(parents=True, exist_ok=True)
        self._temp = self.path.with_name(self.path.name + ".tmp")
        # buffering=1: line-buffered, so a crashed run's .tmp still holds
        # every completed line for post-mortem reading.
        self._handle: Optional[Any] = open(
            self._temp, "w", encoding="utf-8", buffering=1
        )
        self.records_written = 0
        self.emit(
            {
                "type": "meta",
                "schema": SCHEMA_VERSION,
                "created_unix": time.time(),
            }
        )

    def emit(self, record: Mapping[str, Any]) -> None:
        if self._handle is None:
            raise ValueError(f"trace sink {self.path} is closed")
        self._handle.write(
            json.dumps(record, separators=(",", ":"), sort_keys=True, default=str)
            + "\n"
        )
        self.records_written += 1

    def close(self) -> None:
        """Flush, close, and atomically publish the trace file."""
        if self._handle is None:
            return
        handle, self._handle = self._handle, None
        handle.close()
        os.replace(self._temp, self.path)

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
