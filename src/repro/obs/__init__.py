"""``repro.obs`` — the observability spine: tracing, metrics, sinks.

Three pieces, one contract:

- :mod:`repro.obs.trace` — an explicit-clock span tree
  (``sweep → point → engine → backend``) with typed point events
  (``requeue``, ``breaker_trip``, ``join``, ``ci_check``, ...);
- :mod:`repro.obs.metrics` — a registry of named counters / gauges /
  histograms with mergeable snapshots (worker-side telemetry merges into
  the driver's registry over the ``stats`` wire op);
- :mod:`repro.obs.sink` — the schema-versioned JSONL trace file,
  written line-buffered to a ``.tmp`` and atomically published on close.

**The contract: observability is a pure side channel.**  Nothing in this
package may change Monte-Carlo results, result-store cache keys, or
sweep control flow.  Instrumented modules default to
:data:`~repro.obs.trace.NULL_TRACER`; a failing sink degrades to a
one-time warning, never an aborted sweep; and the CI ``trace-smoke`` job
asserts store bytes are identical with tracing on and off.
"""

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.sink import (
    SCHEMA_VERSION,
    JsonlSink,
    TraceSchemaError,
    iter_trace,
    read_trace,
    validate_record,
)
from repro.obs.summary import (
    TraceSummary,
    format_trace_summary,
    summarize_trace,
)
from repro.obs.trace import NULL_TRACER, NullTracer, Span, Tracer, coerce_tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SCHEMA_VERSION",
    "JsonlSink",
    "TraceSchemaError",
    "iter_trace",
    "read_trace",
    "validate_record",
    "TraceSummary",
    "format_trace_summary",
    "summarize_trace",
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "Tracer",
    "coerce_tracer",
]
