"""Explicit-clock tracing: a span tree plus typed point events.

A :class:`Tracer` produces two record shapes, emitted to a sink (usually
a :class:`~repro.obs.sink.JsonlSink`):

- **spans** — named, timed intervals with ids and parents, forming the
  tree ``sweep → point → engine → backend.call → backend.dispatch →
  backend.span``.  A span record is emitted when the span *closes* (one
  line per completed interval), carrying ``start``/``end`` seconds
  relative to the tracer's epoch.
- **events** — instantaneous, typed points (``requeue``, ``steal``,
  ``breaker_trip``, ``readmit``, ``join``, ``leave``, ``respawn``,
  ``ci_check``, ...) anchored to the span they occurred under, emitted
  immediately.

**Explicit clock.**  The tracer never calls ``time`` directly except
through its ``clock`` callable (default ``time.perf_counter``), so tests
— and simulated-time callers — inject a deterministic clock and get
byte-stable traces.

**Parents.**  Within one thread, ``with tracer.span(...)`` maintains a
thread-local stack, so nesting is automatic.  Work that crosses threads
(the distributed backend's driver threads) passes ``parent=`` explicitly.

**The side-channel contract.**  Tracing must never change results or
abort work: every sink write is wrapped, and the first failure warns
once and disables the sink for the rest of the run — the sweep finishes,
the trace does not.  :data:`NULL_TRACER` is the no-op every instrumented
module defaults to; its ``enabled`` flag lets hot paths skip building
attribute payloads entirely.
"""

from __future__ import annotations

import itertools
import threading
import time
import warnings
from typing import Any, Callable, Dict, Optional


class Span:
    """One open (then closed) interval in the trace tree."""

    __slots__ = ("_tracer", "name", "span_id", "parent_id", "attrs", "start", "end")

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        span_id: int,
        parent_id: Optional[int],
        start: float,
        attrs: Dict[str, Any],
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.attrs = attrs
        self.start = start
        self.end: Optional[float] = None

    def set_attr(self, key: str, value: Any) -> None:
        """Attach (or overwrite) one attribute before the span closes."""
        self.attrs[key] = value

    def event(self, name: str, **attrs: Any) -> None:
        """Emit a point event anchored to this span."""
        self._tracer.event(name, span=self, **attrs)


class _NullSpan:
    """The do-nothing span :data:`NULL_TRACER` hands out."""

    __slots__ = ()
    name = ""
    span_id = 0
    parent_id = None
    start = 0.0
    end = 0.0

    @property
    def attrs(self) -> Dict[str, Any]:
        return {}

    def set_attr(self, key: str, value: Any) -> None:
        pass

    def event(self, name: str, **attrs: Any) -> None:
        pass


NULL_SPAN = _NullSpan()


class _SpanContext:
    """Context manager produced by :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        self._tracer._push(self._span)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self._span.attrs.setdefault("error", exc_type.__name__)
        self._tracer._pop(self._span)
        self._tracer._close_span(self._span)


class _NullContext:
    __slots__ = ()

    def __enter__(self) -> _NullSpan:
        return NULL_SPAN

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_CONTEXT = _NullContext()


class Tracer:
    """Builds the span tree and streams records to a sink.

    Parameters
    ----------
    sink:
        Anything with ``emit(record: dict)`` and ``close()`` —
        :class:`~repro.obs.sink.JsonlSink` in production, a list-backed
        stub in tests.  ``None`` keeps records flowing to nowhere (the
        tracer still tracks parents, which keeps instrumentation code
        branch-free).
    clock:
        The time source for every ``start``/``end``/``t`` field; must be
        monotonic for durations to mean anything.  Defaults to
        ``time.perf_counter``.
    """

    enabled = True

    def __init__(
        self,
        sink: Optional[Any] = None,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        self._sink = sink
        self._clock = clock if clock is not None else time.perf_counter
        self._epoch = self._clock()
        self._ids = itertools.count(1)
        self._local = threading.local()
        self._emit_lock = threading.Lock()
        self._sink_broken = False

    # -- time ----------------------------------------------------------------

    def now(self) -> float:
        """Seconds since this tracer's epoch, on its own clock."""
        return self._clock() - self._epoch

    # -- the thread-local parent stack --------------------------------------

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _push(self, span: Span) -> None:
        self._stack().append(span)

    def _pop(self, span: Span) -> None:
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:  # pragma: no cover - misnested exit
            stack.remove(span)

    def current_span(self) -> Optional[Span]:
        """This thread's innermost open span (``None`` at top level)."""
        stack = self._stack()
        return stack[-1] if stack else None

    # -- spans and events ----------------------------------------------------

    def span(
        self,
        name: str,
        parent: Optional[Span] = None,
        **attrs: Any,
    ) -> _SpanContext:
        """Open a span as a context manager yielding the :class:`Span`.

        ``parent`` overrides the thread-local parent — how driver
        threads attach their spans under the dispatch that spawned them.
        """
        if parent is None:
            parent = self.current_span()
        parent_id = None if parent is None else parent.span_id
        span = Span(
            self, name, next(self._ids), parent_id, self.now(), dict(attrs)
        )
        return _SpanContext(self, span)

    def event(
        self,
        name: str,
        span: Optional[Span] = None,
        **attrs: Any,
    ) -> None:
        """Emit one instantaneous typed event."""
        if span is None:
            span = self.current_span()
        self._emit(
            {
                "type": "event",
                "name": name,
                "t": self.now(),
                "span": None if span is None else span.span_id,
                "attrs": attrs,
            }
        )

    def _close_span(self, span: Span) -> None:
        span.end = self.now()
        self._emit(
            {
                "type": "span",
                "name": span.name,
                "id": span.span_id,
                "parent": span.parent_id,
                "start": span.start,
                "end": span.end,
                "attrs": span.attrs,
            }
        )

    # -- emission (the degrade-to-warning path) ------------------------------

    def _emit(self, record: Dict[str, Any]) -> None:
        if self._sink is None or self._sink_broken:
            return
        with self._emit_lock:
            if self._sink_broken:
                return
            try:
                self._sink.emit(record)
            except Exception as error:  # noqa: BLE001 - the side-channel contract
                self._sink_broken = True
                warnings.warn(
                    f"trace sink failed ({type(error).__name__}: {error}); "
                    f"tracing disabled for the rest of the run — results "
                    f"are unaffected",
                    RuntimeWarning,
                    stacklevel=3,
                )

    @property
    def sink_broken(self) -> bool:
        """Whether a sink failure has disabled emission for this run."""
        return self._sink_broken

    def close(self) -> None:
        """Close the sink (finalising its file); degrade, never raise."""
        if self._sink is None:
            return
        try:
            self._sink.close()
        except Exception as error:  # noqa: BLE001 - same contract as emit
            if not self._sink_broken:
                self._sink_broken = True
                warnings.warn(
                    f"trace sink failed to close ({type(error).__name__}: "
                    f"{error}); the trace file may be incomplete — results "
                    f"are unaffected",
                    RuntimeWarning,
                    stacklevel=2,
                )
        finally:
            self._sink = None

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class NullTracer:
    """The no-op tracer instrumented modules default to.

    ``enabled`` is ``False`` so hot paths can skip even *building* event
    payloads: ``if tracer.enabled: tracer.event(...)``.
    """

    enabled = False

    def now(self) -> float:
        return 0.0

    def span(self, name: str, parent: Optional[Any] = None, **attrs: Any):
        return _NULL_CONTEXT

    def event(self, name: str, span: Optional[Any] = None, **attrs: Any) -> None:
        pass

    def current_span(self) -> None:
        return None

    def close(self) -> None:
        pass

    def __enter__(self) -> "NullTracer":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


NULL_TRACER = NullTracer()


def coerce_tracer(tracer: Optional[Any]) -> Any:
    """``None`` → :data:`NULL_TRACER`; anything else passes through."""
    return NULL_TRACER if tracer is None else tracer
