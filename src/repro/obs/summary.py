"""Render a recorded trace: phases, workers, timelines, CI progression.

``repro trace summary FILE.jsonl`` is a thin shell over
:func:`summarize_trace` + :func:`format_trace_summary`.  The summary is
computed entirely from the validated records (:func:`repro.obs.sink.read_trace`),
so it works on any conforming trace — including ones produced by older
runs or other tools — and never needs the live objects back.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.obs.sink import read_trace

#: The membership/fault events worth a timeline line, in display order.
TIMELINE_EVENTS = (
    "worker_failure",
    "requeue",
    "steal",
    "breaker_trip",
    "readmit",
    "join",
    "leave",
    "respawn",
)


@dataclass
class PhaseStats:
    """Aggregate wall-clock of every span sharing one name."""

    name: str
    count: int = 0
    total_seconds: float = 0.0

    @property
    def mean_seconds(self) -> float:
        return self.total_seconds / self.count if self.count else 0.0


@dataclass
class WorkerStats:
    """Per-worker span accounting from ``backend.span`` records."""

    address: str
    spans: int = 0
    busy_seconds: float = 0.0


@dataclass
class TraceSummary:
    """Everything :func:`format_trace_summary` renders."""

    schema: int
    records: int
    wall_seconds: float
    phases: List[PhaseStats] = field(default_factory=list)
    workers: List[WorkerStats] = field(default_factory=list)
    timeline: List[Tuple[float, str, Dict[str, Any]]] = field(default_factory=list)
    #: point label → [(trials_done, max_half_width), ...] in time order.
    ci_progression: Dict[str, List[Tuple[int, float]]] = field(default_factory=dict)
    event_counts: Dict[str, int] = field(default_factory=dict)


def _point_label(
    span_id: Optional[int], spans_by_id: Mapping[int, Dict[str, Any]]
) -> str:
    """Walk the parent chain from a span to its enclosing point's label."""
    seen = set()
    while span_id is not None and span_id in spans_by_id and span_id not in seen:
        seen.add(span_id)
        span = spans_by_id[span_id]
        if span["name"] == "point":
            attrs = span.get("attrs", {})
            label = attrs.get("label")
            if label:
                return str(label)
            return f"point {attrs.get('index', '?')}"
        span_id = span.get("parent")
    return "(no point)"


def summarize_trace(path) -> TraceSummary:
    """Load, validate, and aggregate one trace file."""
    records = read_trace(path)
    meta = records[0] if records and records[0]["type"] == "meta" else {"schema": 0}
    spans = [record for record in records if record["type"] == "span"]
    events = [record for record in records if record["type"] == "event"]
    spans_by_id = {span["id"]: span for span in spans}

    phases: Dict[str, PhaseStats] = {}
    for span in spans:
        stats = phases.setdefault(span["name"], PhaseStats(span["name"]))
        stats.count += 1
        stats.total_seconds += span["end"] - span["start"]

    workers: Dict[str, WorkerStats] = {}
    for span in spans:
        if span["name"] != "backend.span":
            continue
        address = str(span.get("attrs", {}).get("worker", "?"))
        stats = workers.setdefault(address, WorkerStats(address))
        stats.spans += 1
        stats.busy_seconds += span["end"] - span["start"]

    timeline: List[Tuple[float, str, Dict[str, Any]]] = []
    event_counts: Dict[str, int] = {}
    ci_progression: Dict[str, List[Tuple[int, float]]] = {}
    for event in events:
        name = event["name"]
        event_counts[name] = event_counts.get(name, 0) + 1
        if name in TIMELINE_EVENTS:
            timeline.append((event["t"], name, event.get("attrs", {})))
        elif name == "ci_check":
            attrs = event.get("attrs", {})
            label = _point_label(event.get("span"), spans_by_id)
            done = attrs.get("trials_done")
            width = attrs.get("max_half_width")
            if isinstance(done, int) and isinstance(width, (int, float)):
                ci_progression.setdefault(label, []).append((done, float(width)))
    timeline.sort(key=lambda item: item[0])

    if spans:
        wall = max(span["end"] for span in spans) - min(
            span["start"] for span in spans
        )
    elif events:
        wall = max(event["t"] for event in events)
    else:
        wall = 0.0

    # Root-first, then by cumulative weight: the tree's natural read order.
    ordered_phases = sorted(
        phases.values(), key=lambda stats: -stats.total_seconds
    )
    ordered_workers = sorted(workers.values(), key=lambda stats: stats.address)
    return TraceSummary(
        schema=meta.get("schema", 0),
        records=len(records),
        wall_seconds=wall,
        phases=ordered_phases,
        workers=ordered_workers,
        timeline=timeline,
        ci_progression=ci_progression,
        event_counts=dict(sorted(event_counts.items())),
    )


def format_trace_summary(summary: TraceSummary, path: Any = "") -> str:
    """The plain-text rendering ``repro trace summary`` prints."""
    lines: List[str] = []
    title = f"trace summary{f': {path}' if path else ''}"
    lines.append(title)
    lines.append(
        f"  schema {summary.schema}, {summary.records} records, "
        f"wall {summary.wall_seconds:.3f}s"
    )
    lines.append("")
    lines.append("wall-clock per phase")
    lines.append(f"  {'phase':<18} {'count':>6} {'total':>10} {'mean':>10}")
    for stats in summary.phases:
        lines.append(
            f"  {stats.name:<18} {stats.count:>6} "
            f"{stats.total_seconds:>9.3f}s {stats.mean_seconds:>9.4f}s"
        )
    if not summary.phases:
        lines.append("  (no spans recorded)")

    lines.append("")
    lines.append("worker spans")
    if summary.workers:
        lines.append(f"  {'worker':<24} {'spans':>6} {'busy':>10} {'util':>6}")
        for stats in summary.workers:
            utilization = (
                stats.busy_seconds / summary.wall_seconds
                if summary.wall_seconds > 0
                else 0.0
            )
            lines.append(
                f"  {stats.address:<24} {stats.spans:>6} "
                f"{stats.busy_seconds:>9.3f}s {utilization:>5.0%}"
            )
    else:
        lines.append("  (none — local backend, or tracing ended before dispatch)")

    if summary.timeline:
        lines.append("")
        lines.append("fault/membership timeline")
        for t, name, attrs in summary.timeline:
            detail = " ".join(
                f"{key}={value}" for key, value in sorted(attrs.items())
            )
            lines.append(f"  +{t:9.3f}s  {name:<14} {detail}".rstrip())

    if summary.ci_progression:
        lines.append("")
        lines.append("CI half-width progression")
        for label, steps in summary.ci_progression.items():
            rendered = ", ".join(
                f"{done}→{width:.4f}" for done, width in steps
            )
            lines.append(f"  {label}: {rendered}")

    if summary.event_counts:
        lines.append("")
        lines.append("event counts")
        rendered = " ".join(
            f"{name}={count}" for name, count in summary.event_counts.items()
        )
        lines.append(f"  {rendered}")
    return "\n".join(lines)
