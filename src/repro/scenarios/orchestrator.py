"""The sweep orchestrator: expand a spec's grid, run it, cache it, resume it.

One :meth:`SweepOrchestrator.run` call owns the whole sweep:

- the point grid comes from :meth:`ScenarioSpec.points` (axes cross
  product, last axis fastest);
- **one** execution backend serves every point, resolved through
  :mod:`repro.backends` (explicit ``backend`` argument, else the spec's
  pinned ``engine.backend``, else the ``jobs`` sugar: serial for 1, the
  shared ``shm-pool`` above) and opened exactly once per sweep — a
  ``distributed`` backend connects its workers once and streams every
  point's spans through the same sockets;
- each point gets its *own* :class:`~repro.experiments.engine.TrialEngine`
  (engines are cheap; the executor is the expensive part) so tolerance can
  vary per point: a spec's :class:`~repro.scenarios.spec.ToleranceSchedule`
  or an arbitrary ``tolerance_fn(params) -> float | None`` hook decides
  how hard to pin each point;
- with a :class:`~repro.scenarios.store.ResultStore`, finished points are
  persisted under their content hash and *skipped* on re-runs — re-running
  a completed sweep performs zero new trials, and a sweep interrupted at
  point N resumes with N points served from disk.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, replace
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple, Union

from repro.backends import get as get_backend
from repro.backends.base import BackendSpec
from repro.backends.distributed import NoWorkersLeft, PointDeadlineExceeded
from repro.experiments.engine import TrialEngine
from repro.experiments.executors import TrialExecutor
from repro.obs.trace import NULL_TRACER, coerce_tracer
from repro.scenarios.journal import SweepJournal, sweep_spec_hash
from repro.scenarios.runners import get_runner
from repro.scenarios.spec import ScenarioSpec, SweepPoint
from repro.scenarios.store import (
    STORE_GENERATION,
    ResultStore,
    StoreIntegrityError,
    finalize_record,
    point_cache_key,
)
from repro.util.validation import check_positive_int

#: Per-point tolerance hook: full parameter dict -> tolerance (or None).
ToleranceFn = Callable[[Mapping[str, Any]], Optional[float]]

#: Per-point progress hook: (point, record, served_from_cache).
ProgressFn = Callable[[SweepPoint, Dict[str, Any], bool], None]


@contextmanager
def _null_guard():
    yield


@dataclass(frozen=True)
class PointEntry:
    """One resolved grid point: values, tolerance, cache key, display label.

    The sweep's unit of work, shared between the orchestrator's point
    loop and the sweep service's job scheduler — both iterate the same
    resolved entries, so a submitted job and a CLI sweep of the same
    scenario agree on every cache key by construction.
    """

    point: SweepPoint
    tolerance: Optional[float]
    key: str
    label: str


def resolve_entries(
    spec: ScenarioSpec,
    trials: Optional[int] = None,
    tolerance: Optional[float] = None,
    tolerance_fn: Optional[ToleranceFn] = None,
    batch_size: Optional[int] = None,
) -> Tuple[ScenarioSpec, int, List[PointEntry]]:
    """Resolve a spec's whole grid up front: effective spec, trials, entries.

    ``batch_size`` is folded into the spec *before* any cache key is
    derived (the partition is result-shaping); per-point tolerance is
    ``tolerance_fn`` > (base ``tolerance`` + the spec's schedule).
    Returns the effective spec (use it, not the argument, from here on),
    the effective trial budget, and one :class:`PointEntry` per point in
    grid order.
    """
    if batch_size is not None:
        spec = replace(
            spec, engine=replace(spec.engine, batch_size=batch_size)
        )
    effective_trials = spec.trials if trials is None else trials
    check_positive_int(effective_trials, "trials", minimum=0)
    entries: List[PointEntry] = []
    for point in spec.points():
        if tolerance_fn is not None:
            resolved = tolerance_fn(point.params(spec))
        else:
            resolved = spec.point_tolerance(point.values, base=tolerance)
        key = point_cache_key(
            spec, point.values, trials=effective_trials, tolerance=resolved
        )
        label = (
            " ".join(
                f"{name}={value}" for name, value in point.values.items()
            )
            or spec.name
        )
        entries.append(PointEntry(point, resolved, key, label))
    return spec, effective_trials, entries


def compute_point_result(
    runner: Callable[..., Any],
    executor: TrialExecutor,
    spec: ScenarioSpec,
    entry: PointEntry,
    trials: int,
    tracer: Any = None,
) -> Any:
    """Run one point's trials on ``executor`` through a fresh engine.

    Engines are cheap; the executor is the expensive shared part — which
    is exactly why the service can serialize many jobs' points through
    one backend with one of these calls at a time.
    """
    engine = TrialEngine(
        executor=executor,
        tolerance=entry.tolerance,
        min_trials=spec.engine.min_trials,
        check_interval=spec.engine.check_interval,
        checkpoint_batches=spec.engine.checkpoint_batches,
        ci_method=spec.engine.ci_method,
        tracer=tracer,
    )
    return runner(
        entry.point.params(spec),
        trials,
        spec.seed,
        engine,
        spec.engine.batch_size,
    )


def build_point_record(
    spec: ScenarioSpec,
    entry: PointEntry,
    trials: int,
    result: Any,
) -> Dict[str, Any]:
    """Finalize one computed point into its store-record shape."""
    return finalize_record(
        {
            "key": entry.key,
            "scenario": spec.name,
            "kind": spec.kind,
            "point": dict(entry.point.values),
            "params": entry.point.params(spec),
            "trials": trials,
            "seed": spec.seed,
            "tolerance": entry.tolerance,
            "result": result,
            # Finalized (generation + checksum) here as well as in
            # save() so a report's record shape never depends on cache
            # state.
            "store_generation": STORE_GENERATION,
        }
    )


class _PointWatchdog:
    """Arms a per-point deadline against a cancellable executor.

    When the deadline fires, the executor's in-flight dispatch is
    aborted with :class:`PointDeadlineExceeded` and busy workers are
    told to abandon their spans — the orchestrator then either degrades
    to the fallback backend or propagates the error.  Executors without
    ``cancel_active`` (all the local ones) cannot be interrupted from
    outside, so the guard no-ops for them.
    """

    def __init__(self, deadline: float, tracer: Any) -> None:
        self.deadline = deadline
        self.tracer = tracer
        #: Times the deadline fired.  A firing that loses the race with
        #: a completing point is a harmless no-op abort but still counts
        #: — this is "fired", not "point failed".
        self.fired = 0

    @contextmanager
    def guard(self, executor: TrialExecutor, index: int, sweep_span: Any):
        cancel = getattr(executor, "cancel_active", None)
        if cancel is None:
            yield
            return

        def expire() -> None:
            self.fired += 1
            self.tracer.event(
                "watchdog",
                span=sweep_span,
                point=index,
                deadline_seconds=self.deadline,
            )
            cancel(
                PointDeadlineExceeded(
                    f"point {index} exceeded its {self.deadline}s deadline"
                )
            )

        timer = threading.Timer(self.deadline, expire)
        timer.daemon = True
        timer.start()
        try:
            yield
        finally:
            timer.cancel()


@dataclass(frozen=True)
class SweepReport:
    """The outcome of one orchestrated sweep."""

    spec: ScenarioSpec
    records: Tuple[Dict[str, Any], ...]
    computed: int
    cached: int
    #: The executor's fault/elasticity counters (``backend.stats``),
    #: snapshotted before close for executors that expose them —
    #: requeues, breaker trips, re-admissions, mid-sweep joins.  ``None``
    #: for executors without stats (all the local ones).
    backend_stats: Optional[Dict[str, int]] = None

    @property
    def points(self) -> int:
        return len(self.records)

    @property
    def trials_run(self) -> int:
        """Trials executed this run (cached points contribute zero)."""
        return sum(
            record["result"].get("trials_run", 0)
            for record in self.records
            if not record.get("from_cache")
        )

    def results(self) -> List[Dict[str, Any]]:
        """The per-point result dicts, in grid order."""
        return [record["result"] for record in self.records]


class SweepOrchestrator:
    """Runs scenario specs through one shared executor and a result store.

    Parameters
    ----------
    store:
        Optional :class:`ResultStore`; with one, completed points are
        cached and re-runs/resumes skip them.
    jobs:
        Worker-count sugar for the default backend (``1`` = serial,
        above that one shared ``shm-pool``).  An explicit value is
        merged into a named ``backend`` that accepts a ``jobs`` option
        (including ``jobs=1`` → a one-worker pool); ``None`` keeps a
        named backend's own default.  Ignored when ``executor`` is
        given.
    executor:
        A pre-built :class:`~repro.backends.base.ExecutionBackend`
        instance to use instead; its ``open``/``close`` lifecycle still
        brackets each :meth:`run`.
    backend:
        A backend registry name or
        :class:`~repro.backends.base.BackendSpec` — e.g.
        ``"distributed"`` with ``workers=[...]`` options.  Overrides a
        spec's pinned ``engine.backend``; itself overridden by
        ``executor``.
    tolerance:
        Base tolerance override; ``None`` defers to each spec's.
    tolerance_fn:
        Per-point hook receiving the point's full parameter dict and
        returning its tolerance; overrides base + schedule entirely.
    batch_size:
        Override of each spec's pinned engine ``batch_size`` — i.e. of
        the batch *partition*, which (unlike any backend choice) is
        allowed to change results, so the override is folded into the
        effective engine settings *before* cache keys are derived: runs
        sharing a ``batch_size`` share store entries, runs differing in
        it never collide.  What the chaos harness uses to carve the
        smoke sweep into enough spans to kill a worker mid-point.
    tracer:
        A :class:`~repro.obs.trace.Tracer`: each :meth:`run` records a
        ``sweep`` span wrapping one ``point`` span per grid point
        (cached points carry a ``cache_hit`` event; computed ones nest
        the engine's spans), hands the tracer to the per-point engines,
        and — when the resolved backend accepts one — to the backend
        itself, so distributed dispatch detail lands in the same tree.
        Tracing is a pure side channel: results, store records, and
        cache keys are byte-identical with it on, off, or failing.
    fallback:
        The degradation policy when the sweep's backend collapses.
        ``None`` (default) keeps the historical behaviour: the error
        propagates and the sweep aborts (with partial ``backend_stats``
        preserved).  ``"local"`` degrades the sweep one-way: on
        :class:`NoWorkersLeft` or a watchdog
        :class:`PointDeadlineExceeded`, the failed point — and every
        later point — reruns on the default local backend (the ``jobs``
        sugar), emitting a typed ``degraded`` event and a ``degraded``
        stats counter.  The determinism contract makes the switch
        invisible in the results: store bytes match a never-degraded
        run.
    point_deadline:
        Optional per-point wall-clock budget in seconds.  A driver-side
        watchdog arms per computed point; expiry cancels the backend's
        in-flight dispatch (requeueing worker spans mid-flight) and
        raises :class:`PointDeadlineExceeded` into the degradation
        ladder.  Only enforceable against executors exposing
        ``cancel_active`` (the distributed backend); local executors
        ignore it.
    journal:
        Whether store-backed runs keep a per-sweep write-ahead journal
        (:class:`~repro.scenarios.journal.SweepJournal`) distinguishing
        committed from mid-flight points across driver crashes.  On by
        default; no effect without a store.
    """

    def __init__(
        self,
        store: Optional[ResultStore] = None,
        jobs: Optional[int] = None,
        executor: Optional[TrialExecutor] = None,
        backend: Union[str, BackendSpec, TrialExecutor, None] = None,
        tolerance: Optional[float] = None,
        tolerance_fn: Optional[ToleranceFn] = None,
        batch_size: Optional[int] = None,
        tracer: Any = None,
        fallback: Optional[str] = None,
        point_deadline: Optional[float] = None,
        journal: bool = True,
    ) -> None:
        self.store = store
        self.jobs = None if jobs is None else check_positive_int(jobs, "jobs")
        self._executor = executor
        self.backend = backend
        self.tolerance = tolerance
        self.tolerance_fn = tolerance_fn
        self.batch_size = (
            None
            if batch_size is None
            else check_positive_int(batch_size, "batch_size")
        )
        self.tracer = coerce_tracer(tracer)
        if fallback not in (None, "local"):
            raise ValueError(
                f"unknown fallback policy {fallback!r} (expected None or 'local')"
            )
        self.fallback = fallback
        if point_deadline is not None and not point_deadline > 0:
            raise ValueError("point_deadline must be a positive number of seconds")
        self.point_deadline = point_deadline
        self.journal = bool(journal)
        #: The most recent run's backend-stats snapshot — taken in a
        #: ``finally``, so it survives (and gets traced) even when the
        #: backend dies mid-run and no :class:`SweepReport` is returned.
        self.last_backend_stats: Optional[Dict[str, int]] = None

    def _backend_for(self, spec: ScenarioSpec) -> TrialExecutor:
        """Resolve one run's backend: executor > backend > spec > jobs."""
        if self._executor is not None:
            return self._executor
        backend = self.backend
        if backend is None and spec.engine.backend is not None:
            backend = spec.engine.backend
        return get_backend(backend, jobs=self.jobs, sweep=True)

    def point_tolerance(
        self, spec: ScenarioSpec, point: SweepPoint
    ) -> Optional[float]:
        """Resolve one point's tolerance: hook > (base override + schedule)."""
        if self.tolerance_fn is not None:
            return self.tolerance_fn(point.params(spec))
        return spec.point_tolerance(point.values, base=self.tolerance)

    def run(
        self,
        spec: ScenarioSpec,
        trials: Optional[int] = None,
        force: bool = False,
        progress: Optional[ProgressFn] = None,
    ) -> SweepReport:
        """Run (or resume) every point of ``spec``.

        ``trials`` overrides the spec's per-point budget; ``force``
        recomputes even cached points (and overwrites their records).
        Interrupting a run is safe at any moment — even ``kill -9``:
        completed points are already persisted, the journal names the
        point that was mid-flight, and the next ``run`` recomputes
        exactly that point (byte-identically, by the determinism
        contract) while serving the rest from the store.
        """
        runner = get_runner(spec.kind)
        # Resolve the whole grid up front: the journal's spec hash covers
        # every point's identity, so it must exist before the first point
        # runs.  (batch_size is folded into the spec there — the
        # partition is result-shaping, so overridden runs get their own
        # cache entries.)
        spec, effective_trials, entries = resolve_entries(
            spec,
            trials=trials,
            tolerance=self.tolerance,
            tolerance_fn=self.tolerance_fn,
            batch_size=self.batch_size,
        )
        records: List[Dict[str, Any]] = []
        computed = cached = 0
        executor = self._backend_for(spec)
        if self.tracer is not NULL_TRACER and hasattr(executor, "tracer"):
            # Backends that trace their own dispatch (distributed spans,
            # membership events) join the sweep's tree.
            executor.tracer = self.tracer
        journal: Optional[SweepJournal] = None
        midflight: frozenset = frozenset()
        if self.store is not None and self.journal:
            journal = SweepJournal(self.store.root, spec.name)
            # Takes the owner lease: a second driver racing this journal
            # gets JournalBusyError here — fail fast, never interleave.
            midflight = frozenset(
                journal.begin(
                    sweep_spec_hash([entry.key for entry in entries]),
                    len(entries),
                )
            )
        watchdog = (
            _PointWatchdog(self.point_deadline, self.tracer)
            if self.point_deadline is not None
            else None
        )
        degraded = 0
        fallback_executor: Optional[TrialExecutor] = None
        with self.tracer.span(
            "sweep",
            scenario=spec.name,
            kind=spec.kind,
            points=len(entries),
            trials=effective_trials,
            backend=type(executor).__name__,
        ) as sweep_span:
            if midflight:
                # A predecessor died with these points half-done: their
                # records (if any) are untrusted and will recompute.
                self.tracer.event(
                    "journal_recovery",
                    span=sweep_span,
                    midflight=len(midflight),
                )
            active = executor
            with executor:
                try:
                    for entry in entries:
                        point, tolerance, key = (
                            entry.point,
                            entry.tolerance,
                            entry.key,
                        )
                        with self.tracer.span(
                            "point",
                            index=point.index,
                            label=entry.label,
                            key=key,
                        ) as point_span:
                            if (
                                self.store is not None
                                and not force
                                and key not in midflight
                                and self.store.has(spec.name, key)
                            ):
                                record = self._load_cached(
                                    spec.name, key, point_span
                                )
                                if record is not None:
                                    records.append(record)
                                    cached += 1
                                    point_span.set_attr("cached", True)
                                    point_span.event("cache_hit", key=key)
                                    if journal is not None:
                                        journal.point_finished(
                                            key, point.index
                                        )
                                    if progress is not None:
                                        progress(point, record, True)
                                    continue
                            if journal is not None:
                                # WAL: intent on disk before the point
                                # computes — a SIGKILL between here and
                                # point_finished marks the point
                                # mid-flight, never silently committed.
                                journal.point_started(key, point.index)
                            claim = None
                            if self.store is not None:
                                claim, shared = self._claim_or_follow(
                                    spec.name, key, point_span, force=force
                                )
                                if claim is None:
                                    # A concurrent driver computed this
                                    # point while we waited on its claim:
                                    # its record is ours by content
                                    # address — the point is never
                                    # computed twice.
                                    records.append(shared)
                                    cached += 1
                                    point_span.set_attr("cached", True)
                                    point_span.event(
                                        "dedup_follow", key=key
                                    )
                                    if journal is not None:
                                        journal.point_finished(
                                            key, point.index
                                        )
                                    if progress is not None:
                                        progress(point, shared, True)
                                    continue
                            try:
                                while True:
                                    try:
                                        guard = (
                                            watchdog.guard(
                                                active,
                                                point.index,
                                                sweep_span,
                                            )
                                            if watchdog is not None
                                            else _null_guard()
                                        )
                                        with guard:
                                            result = compute_point_result(
                                                runner,
                                                active,
                                                spec,
                                                entry,
                                                effective_trials,
                                                tracer=self.tracer,
                                            )
                                        break
                                    except (
                                        NoWorkersLeft,
                                        PointDeadlineExceeded,
                                    ) as failure:
                                        if (
                                            self.fallback != "local"
                                            or active is not executor
                                        ):
                                            raise
                                        # Degrade one-way: the failed
                                        # point — and every later one —
                                        # reruns on the local default
                                        # backend.  Same task, same
                                        # spans, same bytes.
                                        degraded += 1
                                        reason = (
                                            "point_deadline"
                                            if isinstance(
                                                failure,
                                                PointDeadlineExceeded,
                                            )
                                            else "no_workers_left"
                                        )
                                        self.tracer.event(
                                            "degraded",
                                            span=sweep_span,
                                            reason=reason,
                                            point=point.index,
                                            from_backend=type(
                                                active
                                            ).__name__,
                                            to_backend="local",
                                        )
                                        fallback_executor = get_backend(
                                            None, jobs=self.jobs, sweep=True
                                        )
                                        if (
                                            self.tracer is not NULL_TRACER
                                            and hasattr(
                                                fallback_executor, "tracer"
                                            )
                                        ):
                                            fallback_executor.tracer = (
                                                self.tracer
                                            )
                                        fallback_executor.open()
                                        active = fallback_executor
                                record = build_point_record(
                                    spec, entry, effective_trials, result
                                )
                                if self.store is not None:
                                    self.store.save(spec.name, key, record)
                            finally:
                                # Claim released *after* the save: a
                                # waiter that sees the claim disappear
                                # finds the record already renamed in.
                                if claim is not None:
                                    claim.release()
                            if journal is not None:
                                journal.point_finished(key, point.index)
                            records.append(record)
                            computed += 1
                            point_span.set_attr(
                                "trials_run", result.get("trials_run", 0)
                                if isinstance(result, dict)
                                else 0,
                            )
                            if progress is not None:
                                progress(point, record, False)
                    if journal is not None:
                        journal.complete()
                finally:
                    # Snapshot in a finally, *inside* the with-block: a
                    # backend that dies mid-run (or mid-finish) must not
                    # take its counters down with it — partial-run stats
                    # survive for callers and land in the trace — and
                    # close() may tear down the very state (workers,
                    # pool) the stats describe.  The orchestrator's own
                    # degradation counters ride in the same dict.
                    stats = getattr(executor, "stats", None)
                    backend_stats = (
                        dict(stats) if isinstance(stats, dict) else None
                    )
                    ladder: Dict[str, int] = {}
                    if degraded:
                        ladder["degraded"] = degraded
                    if watchdog is not None and watchdog.fired:
                        ladder["watchdog_fired"] = watchdog.fired
                    if ladder:
                        backend_stats = {**(backend_stats or {}), **ladder}
                    self.last_backend_stats = backend_stats
                    if backend_stats:
                        self.tracer.event(
                            "backend_stats", span=sweep_span, **backend_stats
                        )
                    if fallback_executor is not None:
                        fallback_executor.close()
                    if journal is not None:
                        # Drop the owner lease whatever happened: a
                        # completed sweep already sealed it (no-op), an
                        # aborted one must not leave a live-looking
                        # lease for the next driver to wait out.
                        journal.release()
        return SweepReport(
            spec=spec,
            records=tuple(records),
            computed=computed,
            cached=cached,
            backend_stats=backend_stats,
        )

    def _load_cached(
        self, scenario: str, key: str, point_span: Any
    ) -> Optional[Dict[str, Any]]:
        """Load a cached record, quarantining damage instead of crashing.

        ``None`` means the record failed verification: it has been moved
        to the store's quarantine and the caller should recompute the
        point — resumes heal a damaged store rather than abort on it.
        """
        try:
            record = self.store.load_verified(scenario, key)
        except StoreIntegrityError as damage:
            quarantined = self.store.quarantine(damage.path)
            point_span.event(
                "quarantine",
                key=key,
                status=damage.status,
                path=str(quarantined),
            )
            return None
        record["from_cache"] = True
        return record

    #: How often a driver blocked on another driver's in-flight claim
    #: re-checks for the record (or a released/expired claim).
    claim_poll_seconds = 0.05

    def _claim_or_follow(
        self, scenario: str, key: str, point_span: Any, force: bool
    ) -> Tuple[Optional[Any], Optional[Dict[str, Any]]]:
        """Claim a point, or follow the concurrent driver computing it.

        Returns ``(claim, None)`` once the in-flight claim is ours, or
        ``(None, record)`` when the claim's holder finished first and
        its record can simply be adopted (content-addressed: same key,
        same bytes).  Under ``force`` the record is never adopted — the
        caller asked for a recompute — so this only returns once the
        claim is acquired.  A holder that dies mid-point is handled by
        claim expiry (dead-pid check inside :meth:`ResultStore.claim`),
        so the wait cannot wedge on a killed driver.
        """
        waited = False
        while True:
            claim = self.store.claim(scenario, key)
            if claim is not None:
                return claim, None
            if not waited:
                waited = True
                point_span.event("claim_wait", key=key)
            time.sleep(self.claim_poll_seconds)
            if not force and self.store.has(scenario, key):
                record = self._load_cached(scenario, key, point_span)
                if record is not None:
                    return None, record


def run_scenario(
    spec: ScenarioSpec,
    store: Optional[ResultStore] = None,
    jobs: Optional[int] = None,
    trials: Optional[int] = None,
    tolerance: Optional[float] = None,
    force: bool = False,
    backend: Union[str, BackendSpec, None] = None,
    batch_size: Optional[int] = None,
) -> SweepReport:
    """One-call convenience wrapper around :class:`SweepOrchestrator`."""
    orchestrator = SweepOrchestrator(
        store=store,
        jobs=jobs,
        backend=backend,
        tolerance=tolerance,
        batch_size=batch_size,
    )
    return orchestrator.run(spec, trials=trials, force=force)
