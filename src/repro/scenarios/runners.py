"""Point runners: how each scenario *kind* executes one grid point.

A runner takes the point's full parameter set (the spec's fixed parameters
merged with the point's axis values), a trial budget, a seed, and the
engine the orchestrator built for the point, and returns a JSON-safe
result dict.  Every result carries two common fields:

- ``"value"`` — the headline number reporting pivots into tables;
- ``"trials_run"`` — trials actually executed (less than the budget when
  adaptive stopping fires; what "zero new trials on a cached re-run"
  means operationally).

The figure kinds delegate to the same per-point functions the historical
drivers loop over (``attack_resilience_point`` & co.), which is the whole
equivalence argument: ``repro figures`` and ``repro sweep run`` literally
execute the same code per point, so the numbers match for a seed.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Mapping, Optional

from repro.experiments.engine import MonteCarloEstimate, PairedEstimate, TrialEngine

PointRunner = Callable[
    [Mapping[str, Any], int, int, TrialEngine, Optional[int]], Dict[str, Any]
]

_RUNNERS: Dict[str, PointRunner] = {}


def register_kind(name: str) -> Callable[[PointRunner], PointRunner]:
    """Register a point runner under a scenario kind name.

    Public on purpose: declaring a brand-new workload is "register a kind,
    write a spec" (see README, *Declaring and running scenarios*).
    """

    def decorator(runner: PointRunner) -> PointRunner:
        _RUNNERS[name] = runner
        return runner

    return decorator


def kind_names() -> tuple:
    return tuple(sorted(_RUNNERS))


def get_runner(kind: str) -> PointRunner:
    if kind not in _RUNNERS:
        raise ValueError(
            f"unknown scenario kind {kind!r}; registered kinds: "
            f"{', '.join(kind_names())}"
        )
    return _RUNNERS[kind]


def _accepts(value: Any, expected: type) -> bool:
    if expected is bool:
        return isinstance(value, bool)
    if isinstance(value, bool):
        return False
    if expected is float:  # ints are fine wherever a float is expected
        return isinstance(value, (int, float))
    return isinstance(value, expected)


def _take(
    kind: str,
    params: Mapping[str, Any],
    required: Dict[str, type],
    optional: Dict[str, Any],
) -> Dict[str, Any]:
    """Validate a point's parameter set against the kind's signature."""
    unknown = sorted(set(params) - set(required) - set(optional))
    if unknown:
        raise ValueError(
            f"kind {kind!r} does not accept parameter(s) {unknown}; "
            f"expected {sorted(required)} plus optional {sorted(optional)}"
        )
    missing = sorted(set(required) - set(params))
    if missing:
        raise ValueError(f"kind {kind!r} missing required parameter(s) {missing}")
    for name, expected in required.items():
        if not _accepts(params[name], expected):
            raise TypeError(
                f"kind {kind!r} parameter {name!r} must be "
                f"{expected.__name__}, got {type(params[name]).__name__} "
                f"({params[name]!r})"
            )
    return {**optional, **dict(params)}


def _estimate_dict(estimate: MonteCarloEstimate) -> Dict[str, Any]:
    return {
        "estimate": estimate.estimate,
        "low": estimate.low,
        "high": estimate.high,
        "trials": estimate.trials,
        "successes": estimate.successes,
    }


def _pair_dict(pair: PairedEstimate) -> Dict[str, Any]:
    return {
        "release": _estimate_dict(pair.release),
        "drop": _estimate_dict(pair.drop),
    }


# -- the paper's figures -----------------------------------------------------


@register_kind("attack_resilience")
def run_attack_resilience_point(
    params: Mapping[str, Any],
    trials: int,
    seed: int,
    engine: TrialEngine,
    batch_size: Optional[int] = None,
) -> Dict[str, Any]:
    """Fig. 6 family: plan, closed-form curve, finite-population MC."""
    from repro.core.planner import DEFAULT_TARGET
    from repro.experiments.attack_resilience import attack_resilience_point

    # The Monte-Carlo lane is part of a point's *parameter set*, so a spec
    # that wants the vectorised kernels must pin kernel="vectorized" (all
    # built-in measuring specs do) — that puts the lane in the result-store
    # cache key.  The unpinned default stays "scalar", the pre-kernel
    # estimator, so stores populated before the vectorised lane existed
    # remain valid for specs that never mention a kernel.
    args = _take(
        "attack_resilience",
        params,
        required={"scheme": str, "p": float},
        optional={
            "population_size": 10000,
            "target": DEFAULT_TARGET,
            "measure": True,
            "kernel": "scalar",
        },
    )
    point = attack_resilience_point(
        args["scheme"],
        args["p"],
        population_size=args["population_size"],
        trials=trials,
        target=args["target"],
        measure=args["measure"],
        seed=seed,
        engine=engine,
        kernel=args["kernel"],
        batch_size=batch_size,
    )
    measured = point.measured
    return {
        "scheme": point.scheme,
        "p": point.malicious_rate,
        "replication": point.configuration.replication,
        "path_length": point.configuration.path_length,
        "cost": point.cost,
        "analytic_release": point.analytic_release,
        "analytic_drop": point.analytic_drop,
        "analytic_worst": point.analytic_worst,
        "measured": _pair_dict(measured) if measured is not None else None,
        "value": measured.worst if measured is not None else point.analytic_worst,
        "trials_run": measured.release.trials if measured is not None else 0,
    }


@register_kind("churn_resilience")
def run_churn_resilience_point(
    params: Mapping[str, Any],
    trials: int,
    seed: int,
    engine: TrialEngine,
    batch_size: Optional[int] = None,
) -> Dict[str, Any]:
    """Fig. 7 family: the epoch churn model per (scheme, α, p)."""
    from repro.experiments.churn_resilience import churn_resilience_point

    args = _take(
        "churn_resilience",
        params,
        required={"scheme": str, "alpha": float, "p": float},
        optional={"population_size": 10000},
    )
    point = churn_resilience_point(
        args["scheme"],
        args["alpha"],
        args["p"],
        population_size=args["population_size"],
        trials=trials,
        seed=seed,
        engine=engine,
        batch_size=batch_size,
    )
    return {
        "scheme": point.scheme,
        "alpha": point.alpha,
        "p": point.malicious_rate,
        "replication": point.replication,
        "path_length": point.path_length,
        "release_resilience": point.outcome.release_resilience,
        "drop_resilience": point.outcome.drop_resilience,
        "value": point.resilience,
        "trials_run": point.outcome.trials,
    }


@register_kind("share_cost")
def run_share_cost_point(
    params: Mapping[str, Any],
    trials: int,
    seed: int,
    engine: TrialEngine,
    batch_size: Optional[int] = None,
) -> Dict[str, Any]:
    """Fig. 8: key-share resilience vs available-node budget."""
    from repro.experiments.cost import share_cost_point

    args = _take(
        "share_cost",
        params,
        required={"budget": int, "p": float},
        optional={"alpha": 3.0},
    )
    point = share_cost_point(
        args["budget"],
        args["p"],
        alpha=args["alpha"],
        trials=trials,
        seed=seed,
        engine=engine,
        batch_size=batch_size,
    )
    return {
        "budget": point.node_budget,
        "p": point.malicious_rate,
        "alpha": point.alpha,
        "replication": point.plan.replication,
        "path_length": point.plan.path_length,
        "shares_per_column": point.plan.shares_per_column,
        "analytic_resilience": point.analytic_resilience,
        "release_resilience": point.outcome.release_resilience,
        "drop_resilience": point.outcome.drop_resilience,
        "value": point.resilience,
        "trials_run": point.outcome.trials,
    }


@register_kind("availability")
def run_availability_point(
    params: Mapping[str, Any],
    trials: int,
    seed: int,
    engine: TrialEngine,
    batch_size: Optional[int] = None,
) -> Dict[str, Any]:
    """Extension: transient unavailability on top of death churn."""
    from repro.experiments.availability import availability_point

    # The unpinned kernel default stays "static" and the churn knobs are
    # optional, so cache keys of stores populated before the epoch lane
    # existed remain valid; only specs that *pin* kernel="epoch" differ.
    args = _take(
        "availability",
        params,
        required={"scheme": str, "uptime": float, "p": float},
        optional={
            "population_size": 10000,
            "kernel": "static",
            "alpha": 2.0,
            "lifetime": "exponential",
            "lifetime_shape": None,
        },
    )
    point = availability_point(
        args["scheme"],
        args["uptime"],
        args["p"],
        population_size=args["population_size"],
        trials=trials,
        seed=seed,
        engine=engine,
        batch_size=batch_size,
        kernel=args["kernel"],
        alpha=args["alpha"],
        lifetime=args["lifetime"],
        lifetime_shape=args["lifetime_shape"],
    )
    payload = {
        "scheme": point.scheme,
        "uptime": point.uptime,
        "p": point.malicious_rate,
        "release_resilience": point.outcome.release_resilience,
        "drop_resilience": point.outcome.drop_resilience,
        "value": point.resilience,
        "trials_run": point.outcome.trials,
    }
    if args["kernel"] != "static":
        payload.update(
            kernel=args["kernel"],
            alpha=args["alpha"],
            lifetime=args["lifetime"],
            population_size=args["population_size"],
        )
    return payload


@register_kind("timeliness")
def run_timeliness_point(
    params: Mapping[str, Any],
    trials: int,
    seed: int,
    engine: TrialEngine,
    batch_size: Optional[int] = None,
) -> Dict[str, Any]:
    """Extension: end-to-end release lateness; ``trials`` is the run count."""
    from repro.experiments.timeliness import timeliness_point

    # As with availability: the kernel default stays "event" and every
    # churn knob is optional, so pre-epoch cache keys remain valid.
    # ``max_latency`` moved from required to optional (the historical
    # spec pins it on an axis, so its keys are unchanged).
    args = _take(
        "timeliness",
        params,
        required={"scheme": str},
        optional={
            "max_latency": 0.5,
            "path_length": 3,
            "kernel": "event",
            "uptime": 0.9,
            "alpha": 2.0,
            "p": 0.0,
            "population_size": 10000,
            "replication": 3,
            "retry_epochs": 8,
            "lifetime": "exponential",
            "lifetime_shape": None,
        },
    )
    result = timeliness_point(
        args["scheme"],
        args["max_latency"],
        runs=trials,
        path_length=args["path_length"],
        seed=seed,
        engine=engine,
        kernel=args["kernel"],
        uptime=args["uptime"],
        alpha=args["alpha"],
        malicious_rate=args["p"],
        population_size=args["population_size"],
        replication=args["replication"],
        retry_epochs=args["retry_epochs"],
        lifetime=args["lifetime"],
        lifetime_shape=args["lifetime_shape"],
        batch_size=batch_size,
    )
    payload = {
        "scheme": result.scheme,
        "max_latency": result.max_latency,
        "delivered": result.delivered,
        "runs": result.runs,
        "delivery_rate": result.delivery_rate if result.runs else 0.0,
        "mean_lateness": result.mean_lateness,
        "worst_lateness": result.worst_lateness,
        "early_releases": result.early_releases,
        "value": result.mean_lateness,
        "trials_run": result.runs,
    }
    if args["kernel"] != "event":
        payload.update(
            kernel=args["kernel"],
            uptime=args["uptime"],
            alpha=args["alpha"],
            p=args["p"],
            population_size=args["population_size"],
            retry_epochs=args["retry_epochs"],
        )
    return payload


# -- new workloads beyond the paper ------------------------------------------


def _multipath_scheme(name: str, replication: int, path_length: int):
    from repro.core.schemes import NodeDisjointScheme, NodeJointScheme

    if name == "disjoint":
        return NodeDisjointScheme(replication, path_length)
    if name == "joint":
        return NodeJointScheme(replication, path_length)
    raise ValueError(
        f"scheme must be 'disjoint' or 'joint' for this kind, got {name!r}"
    )


@register_kind("sensitivity")
def run_sensitivity_point(
    params: Mapping[str, Any],
    trials: int,
    seed: int,
    engine: TrialEngine,
    batch_size: Optional[int] = None,
) -> Dict[str, Any]:
    """Sensitivity of resilience to the (k, l) grid at a fixed threat level.

    The planner normally hides (k, l) behind a cost search; this kind pins
    them explicitly and measures how release/drop resilience trade off as
    the grid grows — the surface the paper's Fig. 6 planner walks.  Pin
    ``kernel="vectorized"`` in the spec (the built-in sensitivity-grid
    does) for the numpy attack kernels; the unpinned default stays the
    scalar per-trial lane so pre-kernel result stores remain valid.
    """
    from repro.experiments.attack_kernels import attack_batch_for
    from repro.experiments.attack_resilience import (
        AttackTrial,
        check_kernel,
        vectorized_batch_size,
    )

    args = _take(
        "sensitivity",
        params,
        required={"scheme": str, "replication": int, "path_length": int, "p": float},
        optional={"population_size": 2000, "kernel": "scalar"},
    )
    scheme = _multipath_scheme(
        args["scheme"], args["replication"], args["path_length"]
    )
    analytic = scheme.resilience(args["p"])
    label = (
        f"sens-{args['scheme']}-k{args['replication']}"
        f"-l{args['path_length']}-p{args['p']}"
    )
    if check_kernel(args["kernel"]) == "vectorized":
        batch = attack_batch_for(scheme, args["p"], args["population_size"])
        pair = engine.run_batched(
            batch,
            trials=trials,
            seed=seed,
            label=label,
            channels=2,
            batch_size=vectorized_batch_size(trials, batch_size),
        ).pair
    else:
        pair = engine.estimate_pair(
            AttackTrial(scheme, args["p"], args["population_size"]),
            trials=trials,
            seed=seed,
            label=label,
        )
    return {
        "scheme": args["scheme"],
        "replication": args["replication"],
        "path_length": args["path_length"],
        "p": args["p"],
        "cost": scheme.node_cost,
        "analytic_release": analytic.release,
        "analytic_drop": analytic.drop,
        "analytic_worst": analytic.worst,
        "measured": _pair_dict(pair),
        "value": pair.worst,
        "trials_run": pair.release.trials,
    }


class AdaptiveTrial:
    """One two-phase adaptive-adversary trial, as a picklable callable."""

    def __init__(
        self,
        scheme,
        population_size: int,
        seed_rate: float,
        observation_rate: float,
        budget: int,
    ) -> None:
        self.scheme = scheme
        self.population_ids = list(range(population_size))
        self.seed_rate = seed_rate
        self.observation_rate = observation_rate
        self.budget = budget

    def __call__(self, rng):
        from repro.adversary.adaptive import AdaptiveAdversary, evaluate_adaptive_attack

        adversary = AdaptiveAdversary(
            self.seed_rate,
            self.observation_rate,
            self.budget,
            rng.fork("adversary"),
        )
        outcome = evaluate_adaptive_attack(
            self.scheme, self.population_ids, adversary, rng
        )
        return outcome.release_resisted, outcome.drop_resisted


@register_kind("adaptive")
def run_adaptive_point(
    params: Mapping[str, Any],
    trials: int,
    seed: int,
    engine: TrialEngine,
    batch_size: Optional[int] = None,
) -> Dict[str, Any]:
    """Adaptive (traffic-observing) adversary vs observation rate.

    The extension workload from :mod:`repro.adversary.adaptive`, run
    through the trial engine so it parallelises and early-stops like every
    other scenario kind.
    """
    args = _take(
        "adaptive",
        params,
        required={
            "scheme": str,
            "observation_rate": float,
            "seed_rate": float,
            "budget": int,
        },
        optional={"population_size": 10000, "replication": 3, "path_length": 4},
    )
    scheme = _multipath_scheme(
        args["scheme"], args["replication"], args["path_length"]
    )
    trial = AdaptiveTrial(
        scheme,
        args["population_size"],
        args["seed_rate"],
        args["observation_rate"],
        args["budget"],
    )
    label = f"adaptive-{args['scheme']}-o{args['observation_rate']}"
    pair = engine.estimate_pair(trial, trials=trials, seed=seed, label=label)
    return {
        "scheme": args["scheme"],
        "observation_rate": args["observation_rate"],
        "seed_rate": args["seed_rate"],
        "budget": args["budget"],
        "replication": args["replication"],
        "path_length": args["path_length"],
        "measured": _pair_dict(pair),
        "release_resilience": pair.release.estimate,
        "drop_resilience": pair.drop.estimate,
        "value": pair.worst,
        "trials_run": pair.release.trials,
    }
