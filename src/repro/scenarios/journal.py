"""Per-sweep write-ahead journal: which points are committed vs. mid-flight.

The result store alone cannot distinguish "this point was never started"
from "the driver was SIGKILLed while this point was half-done": a record
present on disk *looks* committed either way, and a record written by a
driver that died between ``save()`` and whatever bookkeeping would have
followed is indistinguishable from a clean one.  The journal closes that
gap the WAL way — intent is persisted *before* the action:

- ``begin(spec_hash, total_points)`` opens (or resumes) a sweep,
- ``point_started(key)`` is written before a point computes,
- ``point_finished(key)`` is written after its record is safely renamed
  into the store,
- ``complete()`` seals the sweep.

Every transition rewrites the journal file atomically (temp + rename),
so the journal itself survives any kill.  On resume, ``begin`` with the
same ``spec_hash`` returns the *mid-flight* keys — points whose start
was journaled but whose finish never was.  The orchestrator recomputes
exactly those points (the determinism contract makes the recomputation
byte-identical, so a resumed store matches an uninterrupted run), and
trusts the store for everything else.  A different ``spec_hash`` means a
different sweep (other trials, tolerance, grid): the journal resets
rather than poison the new run with stale flight state.

The journal lives in the store's ``.journal/`` dot-directory — next to
the records it guards, invisible to content-key lookups and gc scans.

**Ownership.**  The full-state rewrite is atomic but not *coordinated*:
two live drivers resuming the same scenario would interleave rewrites
and silently lose each other's marks.  ``begin`` therefore takes an
owner lease — ``{"pid", "token"}`` persisted in the state plus an mtime
heartbeat thread that touches the file while the sweep runs — and a
second driver meeting a live lease fails fast with
:class:`JournalBusyError` instead of corrupting the flight record.  A
lease is *dead* (and silently taken over) when its owner process no
longer exists or its heartbeat has gone stale for
:data:`DEFAULT_LEASE_SECONDS`; ``complete``/``release`` drop it
explicitly.  A driver that loses its lease to a takeover (wedged past
the lease window, then resumed) gets :class:`JournalOwnershipLost` on
its next write instead of clobbering the new owner's marks.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
import uuid
from pathlib import Path
from typing import Any, Dict, Optional, Sequence, Set

from repro.scenarios.store import _pid_alive, canonical_json

#: Journal file schema version.
JOURNAL_SCHEMA = 1

#: Store dot-directory holding one journal file per scenario.
JOURNAL_DIR = ".journal"

#: How stale an owner's mtime heartbeat may grow before its lease is
#: considered expired.  The heartbeat touches the file every quarter of
#: this, so a live driver — even one computing a long point with no
#: journal writes — stays multiples of the touch interval inside it.
DEFAULT_LEASE_SECONDS = 30.0

_STARTED = "started"
_FINISHED = "finished"


class JournalBusyError(RuntimeError):
    """Another live driver holds this journal's owner lease.

    Raised by :meth:`SweepJournal.begin` instead of interleaving
    full-state rewrites with the living owner.  The message names the
    owner (pid + heartbeat age) so the operator can tell a genuinely
    concurrent driver from a stale lease about to expire on its own.
    """


class JournalOwnershipLost(RuntimeError):
    """This driver's lease was taken over while it was still writing.

    The losing driver gets this on its next mark instead of silently
    clobbering the new owner's flight state — the write never happens.
    """


def sweep_spec_hash(keys: Sequence[str]) -> str:
    """The identity of one resolved sweep: a hash over its point keys.

    The point cache keys already capture everything result-shaping
    (kind, params, trials, seed, tolerance, engine settings), so hashing
    the ordered key list pins the *whole* sweep: any change that would
    alter any point's identity changes the spec hash, and the journal of
    the old sweep is not mistaken for the new one's.
    """
    digest = hashlib.sha256(
        canonical_json(list(keys)).encode("utf-8")
    ).hexdigest()
    return digest[:32]


class SweepJournal:
    """One scenario's write-ahead journal inside a result store.

    Not thread-safe — the orchestrator's point loop is the single
    writer, which is the point: one sweep, one journal, one story.
    """

    def __init__(
        self,
        root,
        scenario: str,
        lease_seconds: float = DEFAULT_LEASE_SECONDS,
    ) -> None:
        self.scenario = scenario
        self.path = Path(root) / JOURNAL_DIR / f"{scenario}.json"
        self.lease_seconds = float(lease_seconds)
        self._state: Optional[Dict[str, Any]] = None
        #: This journal object's lease identity.  The pid alone cannot
        #: distinguish two drivers in one process (threads, tests); the
        #: token can.
        self._token = uuid.uuid4().hex
        self._heartbeat_stop: Optional[threading.Event] = None
        self._heartbeat_thread: Optional[threading.Thread] = None

    def __repr__(self) -> str:
        return f"SweepJournal({str(self.path)!r})"

    # -- reading -----------------------------------------------------------

    def load(self) -> Optional[Dict[str, Any]]:
        """The journal state on disk, or ``None`` (absent / unreadable).

        Unreadable journals are treated as absent, not fatal: losing the
        journal only loses the committed-vs-mid-flight distinction, and
        the orchestrator's fallback (trust store records) is exactly the
        pre-journal behaviour.
        """
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                state = json.load(handle)
        except (OSError, json.JSONDecodeError):
            return None
        if not isinstance(state, dict) or not isinstance(
            state.get("points"), dict
        ):
            return None
        return state

    @staticmethod
    def _keys_in(state: Dict[str, Any], status: str) -> Set[str]:
        return {
            key
            for key, entry in state.get("points", {}).items()
            if isinstance(entry, dict) and entry.get("status") == status
        }

    def midflight_keys(self) -> Set[str]:
        """Keys journaled as started but never finished (current state)."""
        state = self._state or self.load()
        return self._keys_in(state, _STARTED) if state else set()

    def committed_keys(self) -> Set[str]:
        """Keys journaled as finished (current state)."""
        state = self._state or self.load()
        return self._keys_in(state, _FINISHED) if state else set()

    @classmethod
    def status(cls, root, scenario: str) -> Optional[Dict[str, Any]]:
        """A read-only summary for CLI reporting, or ``None`` if absent."""
        journal = cls(root, scenario)
        state = journal.load()
        if state is None:
            return None
        return {
            "scenario": scenario,
            "status": state.get("status"),
            "spec_hash": state.get("spec_hash"),
            "total_points": state.get("total_points"),
            "committed": len(cls._keys_in(state, _FINISHED)),
            "midflight": sorted(cls._keys_in(state, _STARTED)),
            "owner": state.get("owner"),
        }

    # -- writing -----------------------------------------------------------

    def begin(self, spec_hash: str, total_points: int) -> Set[str]:
        """Open (or resume) a sweep; returns a crashed run's mid-flight keys.

        A running journal with the same ``spec_hash`` is a crashed (or
        interrupted) instance of *this* sweep: its started-but-unfinished
        keys come back so the caller can force-recompute them.  Any other
        state — completed sweep, different spec, no journal — starts
        fresh with no mid-flight set.

        Takes the owner lease: raises :class:`JournalBusyError` when a
        *live* foreign lease holds the journal (owner process alive and
        heartbeat within :attr:`lease_seconds`); a dead or expired lease
        is taken over silently — exactly the crashed-driver resume path.
        """
        existing = self.load()
        self._check_foreign_lease(existing)
        midflight: Set[str] = set()
        if existing is not None and existing.get("spec_hash") == spec_hash:
            if existing.get("status") == "running":
                midflight = self._keys_in(existing, _STARTED)
            state = existing
            state["status"] = "running"
            state["total_points"] = total_points
        else:
            state = {
                "schema": JOURNAL_SCHEMA,
                "scenario": self.scenario,
                "spec_hash": spec_hash,
                "status": "running",
                "total_points": total_points,
                "points": {},
            }
        state["owner"] = {"pid": os.getpid(), "token": self._token}
        self._state = state
        self._write()
        self._start_heartbeat()
        return midflight

    def point_started(self, key: str, index: int) -> None:
        """Journal intent to compute a point — written *before* computing."""
        self._mark(key, index, _STARTED)

    def point_finished(self, key: str, index: int) -> None:
        """Journal a point's record as safely in the store."""
        self._mark(key, index, _FINISHED)

    def complete(self) -> None:
        """Seal the sweep: every point accounted for, no flight state left.

        Dropping the owner lease is part of sealing — a later driver
        adopts the completed journal without any takeover ceremony.
        """
        if self._state is None:
            raise RuntimeError("journal.complete() before begin()")
        self._check_still_owner()
        self._stop_heartbeat()
        self._state["status"] = "complete"
        self._state["owner"] = None
        self._write()

    def release(self) -> None:
        """Drop the owner lease without sealing; idempotent.

        The abort path (and the test stand-in for a dead driver): the
        flight state — status, started/finished marks — stays exactly as
        it is, so a later ``begin`` resumes it, but the lease is gone and
        that later driver does not have to wait it out.  Called by the
        orchestrator in a ``finally`` so an aborted sweep never leaves a
        live-looking lease behind.
        """
        self._stop_heartbeat()
        if self._state is None:
            return
        on_disk = self.load()
        if (
            on_disk is not None
            and isinstance(on_disk.get("owner"), dict)
            and on_disk["owner"].get("token") == self._token
        ):
            on_disk["owner"] = None
            self._state = on_disk
            self._write()

    def _mark(self, key: str, index: int, status: str) -> None:
        if self._state is None:
            raise RuntimeError(f"journal.{status} before begin()")
        self._check_still_owner()
        self._state["points"][key] = {"status": status, "index": index}
        self._write()

    # -- the owner lease ---------------------------------------------------

    def _lease_age(self) -> Optional[float]:
        """Seconds since the journal file was last touched, or ``None``."""
        try:
            return max(0.0, time.time() - self.path.stat().st_mtime)
        except OSError:
            return None

    def _check_foreign_lease(self, existing: Optional[Dict[str, Any]]) -> None:
        """Raise :class:`JournalBusyError` iff a live foreign lease holds on.

        Only a *running* journal can be held: completed sweeps carry no
        flight state worth protecting.  A lease is live when its owner
        process still exists on this host **and** the mtime heartbeat is
        within :attr:`lease_seconds` — a SIGKILLed driver fails the pid
        check immediately (no lease wait on resume), a wedged one fails
        the heartbeat check once the lease expires.
        """
        if existing is None or existing.get("status") != "running":
            return
        owner = existing.get("owner")
        if not isinstance(owner, dict) or owner.get("token") in (
            None,
            self._token,
        ):
            return
        if not _pid_alive(owner.get("pid")):
            return
        age = self._lease_age()
        if age is None or age >= self.lease_seconds:
            return
        raise JournalBusyError(
            f"journal {self.path} is held by a live driver "
            f"(pid {owner.get('pid')}, heartbeat {age:.1f}s ago, lease "
            f"{self.lease_seconds:.0f}s): refusing to interleave sweep "
            f"state — stop that driver or wait for its lease to expire"
        )

    def _check_still_owner(self) -> None:
        """Raise :class:`JournalOwnershipLost` if the lease moved on."""
        on_disk = self.load()
        if on_disk is None:
            return  # journal lost entirely — rewriting it is recovery
        owner = on_disk.get("owner")
        if isinstance(owner, dict) and owner.get("token") not in (
            None,
            self._token,
        ):
            self._stop_heartbeat()
            raise JournalOwnershipLost(
                f"journal {self.path} lease was taken over by pid "
                f"{owner.get('pid')} — this driver's sweep state is stale "
                f"and its writes are refused"
            )

    def _start_heartbeat(self) -> None:
        if self._heartbeat_thread is not None:
            return
        stop = threading.Event()
        interval = max(self.lease_seconds / 4.0, 0.05)
        path = self.path

        def touch_loop() -> None:
            while not stop.wait(interval):
                try:
                    os.utime(path)
                except OSError:
                    pass

        thread = threading.Thread(
            target=touch_loop,
            name=f"repro-journal-heartbeat-{self.scenario}",
            daemon=True,
        )
        self._heartbeat_stop = stop
        self._heartbeat_thread = thread
        thread.start()

    def _stop_heartbeat(self) -> None:
        if self._heartbeat_stop is not None:
            self._heartbeat_stop.set()
        self._heartbeat_stop = None
        self._heartbeat_thread = None

    def __del__(self) -> None:  # pragma: no cover - GC-timing dependent
        try:
            self._stop_heartbeat()
        except Exception:
            pass

    def _write(self) -> None:
        """Atomic full-state rewrite — the same temp+rename as the store."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        temp = self.path.with_suffix(".json.tmp")
        with open(temp, "w", encoding="utf-8") as handle:
            json.dump(self._state, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(temp, self.path)
