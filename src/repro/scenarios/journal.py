"""Per-sweep write-ahead journal: which points are committed vs. mid-flight.

The result store alone cannot distinguish "this point was never started"
from "the driver was SIGKILLed while this point was half-done": a record
present on disk *looks* committed either way, and a record written by a
driver that died between ``save()`` and whatever bookkeeping would have
followed is indistinguishable from a clean one.  The journal closes that
gap the WAL way — intent is persisted *before* the action:

- ``begin(spec_hash, total_points)`` opens (or resumes) a sweep,
- ``point_started(key)`` is written before a point computes,
- ``point_finished(key)`` is written after its record is safely renamed
  into the store,
- ``complete()`` seals the sweep.

Every transition rewrites the journal file atomically (temp + rename),
so the journal itself survives any kill.  On resume, ``begin`` with the
same ``spec_hash`` returns the *mid-flight* keys — points whose start
was journaled but whose finish never was.  The orchestrator recomputes
exactly those points (the determinism contract makes the recomputation
byte-identical, so a resumed store matches an uninterrupted run), and
trusts the store for everything else.  A different ``spec_hash`` means a
different sweep (other trials, tolerance, grid): the journal resets
rather than poison the new run with stale flight state.

The journal lives in the store's ``.journal/`` dot-directory — next to
the records it guards, invisible to content-key lookups and gc scans.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any, Dict, Optional, Sequence, Set

from repro.scenarios.store import canonical_json

#: Journal file schema version.
JOURNAL_SCHEMA = 1

#: Store dot-directory holding one journal file per scenario.
JOURNAL_DIR = ".journal"

_STARTED = "started"
_FINISHED = "finished"


def sweep_spec_hash(keys: Sequence[str]) -> str:
    """The identity of one resolved sweep: a hash over its point keys.

    The point cache keys already capture everything result-shaping
    (kind, params, trials, seed, tolerance, engine settings), so hashing
    the ordered key list pins the *whole* sweep: any change that would
    alter any point's identity changes the spec hash, and the journal of
    the old sweep is not mistaken for the new one's.
    """
    digest = hashlib.sha256(
        canonical_json(list(keys)).encode("utf-8")
    ).hexdigest()
    return digest[:32]


class SweepJournal:
    """One scenario's write-ahead journal inside a result store.

    Not thread-safe — the orchestrator's point loop is the single
    writer, which is the point: one sweep, one journal, one story.
    """

    def __init__(self, root, scenario: str) -> None:
        self.scenario = scenario
        self.path = Path(root) / JOURNAL_DIR / f"{scenario}.json"
        self._state: Optional[Dict[str, Any]] = None

    def __repr__(self) -> str:
        return f"SweepJournal({str(self.path)!r})"

    # -- reading -----------------------------------------------------------

    def load(self) -> Optional[Dict[str, Any]]:
        """The journal state on disk, or ``None`` (absent / unreadable).

        Unreadable journals are treated as absent, not fatal: losing the
        journal only loses the committed-vs-mid-flight distinction, and
        the orchestrator's fallback (trust store records) is exactly the
        pre-journal behaviour.
        """
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                state = json.load(handle)
        except (OSError, json.JSONDecodeError):
            return None
        if not isinstance(state, dict) or not isinstance(
            state.get("points"), dict
        ):
            return None
        return state

    @staticmethod
    def _keys_in(state: Dict[str, Any], status: str) -> Set[str]:
        return {
            key
            for key, entry in state.get("points", {}).items()
            if isinstance(entry, dict) and entry.get("status") == status
        }

    def midflight_keys(self) -> Set[str]:
        """Keys journaled as started but never finished (current state)."""
        state = self._state or self.load()
        return self._keys_in(state, _STARTED) if state else set()

    def committed_keys(self) -> Set[str]:
        """Keys journaled as finished (current state)."""
        state = self._state or self.load()
        return self._keys_in(state, _FINISHED) if state else set()

    @classmethod
    def status(cls, root, scenario: str) -> Optional[Dict[str, Any]]:
        """A read-only summary for CLI reporting, or ``None`` if absent."""
        journal = cls(root, scenario)
        state = journal.load()
        if state is None:
            return None
        return {
            "scenario": scenario,
            "status": state.get("status"),
            "spec_hash": state.get("spec_hash"),
            "total_points": state.get("total_points"),
            "committed": len(cls._keys_in(state, _FINISHED)),
            "midflight": sorted(cls._keys_in(state, _STARTED)),
        }

    # -- writing -----------------------------------------------------------

    def begin(self, spec_hash: str, total_points: int) -> Set[str]:
        """Open (or resume) a sweep; returns a crashed run's mid-flight keys.

        A running journal with the same ``spec_hash`` is a crashed (or
        interrupted) instance of *this* sweep: its started-but-unfinished
        keys come back so the caller can force-recompute them.  Any other
        state — completed sweep, different spec, no journal — starts
        fresh with no mid-flight set.
        """
        existing = self.load()
        midflight: Set[str] = set()
        if existing is not None and existing.get("spec_hash") == spec_hash:
            if existing.get("status") == "running":
                midflight = self._keys_in(existing, _STARTED)
            state = existing
            state["status"] = "running"
            state["total_points"] = total_points
        else:
            state = {
                "schema": JOURNAL_SCHEMA,
                "scenario": self.scenario,
                "spec_hash": spec_hash,
                "status": "running",
                "total_points": total_points,
                "points": {},
            }
        self._state = state
        self._write()
        return midflight

    def point_started(self, key: str, index: int) -> None:
        """Journal intent to compute a point — written *before* computing."""
        self._mark(key, index, _STARTED)

    def point_finished(self, key: str, index: int) -> None:
        """Journal a point's record as safely in the store."""
        self._mark(key, index, _FINISHED)

    def complete(self) -> None:
        """Seal the sweep: every point accounted for, no flight state left."""
        if self._state is None:
            raise RuntimeError("journal.complete() before begin()")
        self._state["status"] = "complete"
        self._write()

    def _mark(self, key: str, index: int, status: str) -> None:
        if self._state is None:
            raise RuntimeError(f"journal.{status} before begin()")
        self._state["points"][key] = {"status": status, "index": index}
        self._write()

    def _write(self) -> None:
        """Atomic full-state rewrite — the same temp+rename as the store."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        temp = self.path.with_suffix(".json.tmp")
        with open(temp, "w", encoding="utf-8") as handle:
            json.dump(self._state, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(temp, self.path)
