"""Content-addressed, resumable result store for scenario sweeps.

Every sweep point is cached as one JSON file whose name is a hash of
everything that determines the point's numbers:

- the scenario *kind* and the point's full parameter set (fixed + axes),
- the trial count and root seed,
- the resolved per-point tolerance,
- the result-shaping engine settings (:class:`~repro.scenarios.spec.EngineSettings`).

Deliberately **excluded** from the key: the scenario's display name and
description (renaming a scenario must not invalidate its results) and the
worker count (the engine's determinism contract guarantees ``jobs`` never
changes results, so serial and parallel runs share cache entries).

Layout::

    <root>/<scenario-name>/<key>.json     # one record per computed point

The scenario directory is a browsing convenience, not part of the
identity: lookups try the scenario's own directory first and then fall
back to any sibling directory holding the same content key, so a renamed
scenario — or a different scenario whose grid overlaps point-for-point —
reuses the cached results instead of recomputing them.

Records are written atomically (temp file + rename), so a sweep killed
mid-write never leaves a truncated record behind — which is what makes
``repro sweep resume`` safe: finished points load from the store, the
interrupted point recomputes.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional

from repro.scenarios.spec import ScenarioSpec

_KEY_HEX_CHARS = 32  # 128 bits of SHA-256: collision-free at any sweep scale


def canonical_json(payload: Any) -> str:
    """Deterministic JSON: sorted keys, no whitespace — the hashing form."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def point_cache_key(
    spec: ScenarioSpec,
    point_values: Mapping[str, Any],
    trials: Optional[int] = None,
    tolerance: Optional[float] = None,
) -> str:
    """The content hash of one sweep point's result.

    ``trials`` defaults to the spec's; ``tolerance`` is the *resolved*
    per-point tolerance (after any schedule), not the base.
    """
    payload = {
        "kind": spec.kind,
        "params": {**spec.fixed, **point_values},
        "trials": spec.trials if trials is None else trials,
        "seed": spec.seed,
        "tolerance": tolerance,
        "engine": spec.engine.to_dict(),
    }
    digest = hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()
    return digest[:_KEY_HEX_CHARS]


class ResultStore:
    """A directory of per-point sweep results, keyed by content hash."""

    def __init__(self, root) -> None:
        self.root = Path(root)

    def __repr__(self) -> str:
        return f"ResultStore({str(self.root)!r})"

    def path_for(self, scenario: str, key: str) -> Path:
        return self.root / scenario / f"{key}.json"

    def find(self, scenario: str, key: str) -> Optional[Path]:
        """Locate a content key: the scenario's directory, then any sibling.

        The fallback is what makes the store content-addressed in
        practice: a renamed scenario (or an overlapping grid saved under
        another name) hits the same records instead of recomputing.
        """
        preferred = self.path_for(scenario, key)
        if preferred.is_file():
            return preferred
        if not self.root.is_dir():
            return None
        for entry in sorted(self.root.iterdir()):
            if entry.is_dir():
                candidate = entry / f"{key}.json"
                if candidate.is_file():
                    return candidate
        return None

    def has(self, scenario: str, key: str) -> bool:
        return self.find(scenario, key) is not None

    def load(self, scenario: str, key: str) -> Dict[str, Any]:
        path = self.find(scenario, key)
        if path is None:
            raise FileNotFoundError(
                f"no cached record for key {key!r} (scenario {scenario!r}) "
                f"under {self.root}"
            )
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)

    def save(self, scenario: str, key: str, record: Mapping[str, Any]) -> Path:
        """Atomically persist one point record (temp file + rename)."""
        path = self.path_for(scenario, key)
        path.parent.mkdir(parents=True, exist_ok=True)
        temp = path.with_suffix(".json.tmp")
        with open(temp, "w", encoding="utf-8") as handle:
            json.dump(record, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(temp, path)
        return path

    def keys(self, scenario: str) -> List[str]:
        """The cached point keys of a scenario (sorted for determinism)."""
        directory = self.root / scenario
        if not directory.is_dir():
            return []
        return sorted(path.stem for path in directory.glob("*.json"))

    def count(self, scenario: str) -> int:
        return len(self.keys(scenario))

    def scenarios(self) -> List[str]:
        """Scenario names that have at least one cached point."""
        if not self.root.is_dir():
            return []
        return sorted(
            entry.name
            for entry in self.root.iterdir()
            if entry.is_dir() and any(entry.glob("*.json"))
        )
