"""Content-addressed, resumable result store for scenario sweeps.

Every sweep point is cached as one JSON file whose name is a hash of
everything that determines the point's numbers:

- the scenario *kind* and the point's full parameter set (fixed + axes),
- the trial count and root seed,
- the resolved per-point tolerance,
- the result-shaping engine settings (:class:`~repro.scenarios.spec.EngineSettings`).

Deliberately **excluded** from the key: the scenario's display name and
description (renaming a scenario must not invalidate its results) and the
worker count (the engine's determinism contract guarantees ``jobs`` never
changes results, so serial and parallel runs share cache entries).

Layout::

    <root>/<scenario-name>/<key>.json     # one record per computed point

The scenario directory is a browsing convenience, not part of the
identity: lookups try the scenario's own directory first and then fall
back to any sibling directory holding the same content key, so a renamed
scenario — or a different scenario whose grid overlaps point-for-point —
reuses the cached results instead of recomputing them.

Records are written atomically (temp file + rename), so a sweep killed
mid-write never leaves a truncated record behind — which is what makes
``repro sweep resume`` safe: finished points load from the store, the
interrupted point recomputes.

Generation-3 records additionally carry a ``checksum`` field — a SHA-256
over the record's canonical JSON (checksum excluded) — so torn copies,
bit rot, and manual edits are *detected*, not silently resumed from:
:meth:`ResultStore.verify` reports them, :meth:`ResultStore.repair`
moves them into a ``.quarantine/`` directory (never deletes), and the
next sweep recomputes exactly the quarantined points.  Dot-directories
under the root (``.quarantine/``, ``.journal/``) are store-internal and
invisible to content-key lookups.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.scenarios.spec import ScenarioSpec

_KEY_HEX_CHARS = 32  # 128 bits of SHA-256: collision-free at any sweep scale

#: The store-format generation stamped into every record written by this
#: code.  Generation 1 is the PR 2/3 format (no stamp — reads as 1);
#: generation 2 added the stamp itself plus the backend-aware cache-key
#: derivation; generation 3 added the record ``checksum``.  Bump it
#: whenever the record schema changes in a way
#: ``repro sweep gc --keep-latest`` should be able to prune.
STORE_GENERATION = 3

#: What untagged (pre-generation) records read as.
LEGACY_GENERATION = 1

#: The integrity field stamped into every generation-3 record.
CHECKSUM_FIELD = "checksum"

#: How long an orphaned ``.json.tmp`` must sit untouched before gc may
#: collect it.  A live driver's in-flight tmp file is seconds old; an
#: orphan from a killed driver only gets older.
DEFAULT_TMP_GRACE_SECONDS = 3600.0

#: The in-flight claim marker next to a point's (future) record:
#: ``<scenario>/<key>.claim``.  Deliberately not ``.json`` so claims are
#: invisible to every record scan (``keys``, ``verify``, lookups).
CLAIM_SUFFIX = ".claim"

#: Fields excluded from the checksum: the checksum itself, plus the
#: in-memory ``from_cache`` marker (never persisted, but excluded
#: defensively so re-verifying a loaded record stays stable).
_UNCHECKSUMMED_FIELDS = (CHECKSUM_FIELD, "from_cache")


def _pid_alive(pid: Any) -> bool:
    """Is ``pid`` a live process on this host?  Unknowable reads as yes.

    The liveness half of lease/claim expiry: a recorded owner pid that
    no longer exists means its artifact is abandoned *now*, without
    waiting out the age-based grace.  Malformed pids and permission
    errors read as alive — expiry must err toward keeping.
    """
    if not isinstance(pid, int) or isinstance(pid, bool) or pid <= 0:
        return True
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except (PermissionError, OSError):
        return True
    return True


class StoreIntegrityError(ValueError):
    """A stored record failed verification (torn, corrupt, or tampered)."""

    def __init__(self, path: Path, status: str) -> None:
        super().__init__(f"store record {path} failed verification: {status}")
        self.path = path
        self.status = status


def record_generation(record: Mapping[str, Any]) -> int:
    """The store-format generation of one record (legacy reads as 1)."""
    value = record.get("store_generation", LEGACY_GENERATION)
    return value if isinstance(value, int) and not isinstance(value, bool) else (
        LEGACY_GENERATION
    )


def canonical_json(payload: Any) -> str:
    """Deterministic JSON: sorted keys, no whitespace — the hashing form."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def record_checksum(record: Mapping[str, Any]) -> str:
    """The integrity hash of one record (checksum field excluded).

    Records are deterministic content — the same point computed on any
    backend produces the same bytes — so the checksum is deterministic
    too, and byte-diff proofs (chaos CI) keep working across the
    generation bump.
    """
    payload = {
        name: value
        for name, value in record.items()
        if name not in _UNCHECKSUMMED_FIELDS
    }
    digest = hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()
    return f"sha256:{digest}"


def verify_record(record: Any) -> str:
    """One record's integrity status: ``ok`` | ``legacy`` | ``mismatch``.

    ``legacy`` means the record predates checksums (generation < 3) —
    trusted as-is, exactly as before the integrity layer existed.
    ``mismatch`` means the record *claims* a checksum that its content
    does not hash to.
    """
    if not isinstance(record, Mapping):
        return "mismatch"
    claimed = record.get(CHECKSUM_FIELD)
    if claimed is None:
        return "legacy"
    if not isinstance(claimed, str):
        return "mismatch"
    return "ok" if record_checksum(record) == claimed else "mismatch"


def finalize_record(record: Mapping[str, Any]) -> Dict[str, Any]:
    """Stamp a record with the current generation and its checksum.

    Idempotent: any stale checksum is recomputed, so finalizing a
    finalized record is a no-op.  :meth:`ResultStore.save` finalizes
    internally; the orchestrator also finalizes the in-memory copy so a
    report's record shape never depends on cache state.
    """
    stamped = {**record, "store_generation": STORE_GENERATION}
    stamped[CHECKSUM_FIELD] = record_checksum(stamped)
    return stamped


def point_cache_key(
    spec: ScenarioSpec,
    point_values: Mapping[str, Any],
    trials: Optional[int] = None,
    tolerance: Optional[float] = None,
) -> str:
    """The content hash of one sweep point's result.

    ``trials`` defaults to the spec's; ``tolerance`` is the *resolved*
    per-point tolerance (after any schedule), not the base.
    """
    engine_payload = spec.engine.to_dict()
    # A pinned execution backend reaches the key only through its
    # *semantically meaningful* options (BackendSpec.cache_fields) — by
    # the determinism contract transport topology (jobs, workers,
    # chunking) never changes results, and no built-in backend declares
    # any semantic option, so the engine payload here is byte-identical
    # to the pre-backend format and existing stores stay valid.
    engine_payload.pop("backend", None)
    if spec.engine.backend is not None:
        semantic = spec.engine.backend.cache_fields()
        if semantic:
            engine_payload["backend"] = {
                "name": spec.engine.backend.name,
                **semantic,
            }
    payload = {
        "kind": spec.kind,
        "params": {**spec.fixed, **point_values},
        "trials": spec.trials if trials is None else trials,
        "seed": spec.seed,
        "tolerance": tolerance,
        "engine": engine_payload,
    }
    digest = hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()
    return digest[:_KEY_HEX_CHARS]


class ResultStore:
    """A directory of per-point sweep results, keyed by content hash."""

    def __init__(self, root) -> None:
        self.root = Path(root)

    def __repr__(self) -> str:
        return f"ResultStore({str(self.root)!r})"

    def path_for(self, scenario: str, key: str) -> Path:
        return self.root / scenario / f"{key}.json"

    def quarantine_dir(self, scenario: str) -> Path:
        """Where :meth:`repair` parks a scenario's failed records."""
        return self.root / ".quarantine" / scenario

    def _scenario_dirs(self) -> List[Path]:
        """The record directories, dot-dirs (quarantine, journal) excluded."""
        if not self.root.is_dir():
            return []
        return sorted(
            entry
            for entry in self.root.iterdir()
            if entry.is_dir() and not entry.name.startswith(".")
        )

    def find(self, scenario: str, key: str) -> Optional[Path]:
        """Locate a content key: the scenario's directory, then any sibling.

        The fallback is what makes the store content-addressed in
        practice: a renamed scenario (or an overlapping grid saved under
        another name) hits the same records instead of recomputing.
        """
        preferred = self.path_for(scenario, key)
        if preferred.is_file():
            return preferred
        for entry in self._scenario_dirs():
            candidate = entry / f"{key}.json"
            if candidate.is_file():
                return candidate
        return None

    def has(self, scenario: str, key: str) -> bool:
        return self.find(scenario, key) is not None

    def load(self, scenario: str, key: str) -> Dict[str, Any]:
        path = self.find(scenario, key)
        if path is None:
            raise FileNotFoundError(
                f"no cached record for key {key!r} (scenario {scenario!r}) "
                f"under {self.root}"
            )
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)

    def load_verified(self, scenario: str, key: str) -> Dict[str, Any]:
        """Load one record, raising :class:`StoreIntegrityError` if bad.

        The cache-trusting load for resumes: torn/corrupt JSON and
        checksum mismatches raise instead of poisoning the sweep;
        ``legacy`` (pre-checksum) records pass, exactly as they always
        have.
        """
        path = self.find(scenario, key)
        if path is None:
            raise FileNotFoundError(
                f"no cached record for key {key!r} (scenario {scenario!r}) "
                f"under {self.root}"
            )
        try:
            with open(path, "r", encoding="utf-8") as handle:
                record = json.load(handle)
        except json.JSONDecodeError:
            raise StoreIntegrityError(path, "corrupt") from None
        status = verify_record(record)
        if status == "mismatch":
            raise StoreIntegrityError(path, status)
        return record

    def quarantine(self, path: Path) -> Path:
        """Move one failed record into ``.quarantine/`` (never delete).

        Quarantined records keep their scenario directory and file name,
        so a repair's damage report stays greppable; the content key
        disappears from :meth:`find`, so the next sweep recomputes the
        point.
        """
        destination = self.quarantine_dir(path.parent.name) / path.name
        destination.parent.mkdir(parents=True, exist_ok=True)
        os.replace(path, destination)
        return destination

    def save(self, scenario: str, key: str, record: Mapping[str, Any]) -> Path:
        """Atomically persist one point record (temp file + rename).

        Every record is stamped with the current store-format
        :data:`STORE_GENERATION` so ``gc(keep_latest=True)`` can prune
        records written by older formats, plus its :func:`record_checksum`
        so :meth:`verify` can detect torn or tampered copies.

        A second writer of an *identical* record is a no-op: concurrent
        sweeps sharing a point (the determinism contract makes their
        records byte-identical) race the rename harmlessly instead of
        churning the file's inode and mtime under each other.
        """
        stamped = finalize_record(record)
        path = self.path_for(scenario, key)
        path.parent.mkdir(parents=True, exist_ok=True)
        body = json.dumps(stamped, indent=2, sort_keys=True) + "\n"
        data = body.encode("utf-8")
        try:
            if path.read_bytes() == data:
                return path
        except OSError:
            pass
        temp = path.with_suffix(".json.tmp")
        with open(temp, "wb") as handle:
            handle.write(data)
        os.replace(temp, path)
        return path

    # -- in-flight point claims --------------------------------------------

    def claim_path(self, scenario: str, key: str) -> Path:
        return self.root / scenario / f"{key}{CLAIM_SUFFIX}"

    def claim(
        self,
        scenario: str,
        key: str,
        grace_seconds: float = DEFAULT_TMP_GRACE_SECONDS,
    ) -> Optional["PointClaim"]:
        """Claim a point for computation; ``None`` if someone live has it.

        The cross-process dedup primitive: before computing a point, a
        driver exclusively creates ``<scenario>/<key>.claim`` carrying
        its pid + token.  A concurrent driver meeting the claim backs
        off (``None``) and polls for the record instead of recomputing.
        A claim whose owner process is gone, or whose file has aged past
        ``grace_seconds`` (the same grace gc applies to tmp orphans), is
        *abandoned*: it is taken over in place rather than wedging every
        later sweep on a dead driver's marker.

        Claims are advisory.  Losing an unlikely takeover race means two
        drivers compute the same point — the determinism contract makes
        their records byte-identical and :meth:`save` folds the second
        write into a no-op, so the race costs duplicate work, never
        correctness.
        """
        path = self.claim_path(scenario, key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {"pid": os.getpid(), "token": uuid.uuid4().hex}
        body = canonical_json(payload) + "\n"
        try:
            with open(path, "x", encoding="utf-8") as handle:
                handle.write(body)
            return PointClaim(path=path, token=payload["token"])
        except FileExistsError:
            pass
        if not self._claim_is_stale(path, grace_seconds):
            return None
        # Abandoned: replace it with our own marker (atomic — concurrent
        # takeovers race the rename, last writer owns the claim file and
        # the loser discovers it at release time, harmlessly).
        temp = path.with_suffix(CLAIM_SUFFIX + ".tmp")
        try:
            with open(temp, "w", encoding="utf-8") as handle:
                handle.write(body)
            os.replace(temp, path)
        except OSError:
            return None
        return PointClaim(path=path, token=payload["token"])

    @staticmethod
    def _claim_is_stale(path: Path, grace_seconds: float) -> bool:
        """Dead owner pid, or a claim file older than the grace period."""
        try:
            age = time.time() - path.stat().st_mtime
        except OSError:
            # Vanished underneath us — released; the caller retries.
            return True
        if age >= grace_seconds:
            return True
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, json.JSONDecodeError):
            # Torn or mid-write: fresh by mtime, so keep it.
            return False
        return isinstance(payload, dict) and not _pid_alive(payload.get("pid"))

    def keys(self, scenario: str) -> List[str]:
        """The cached point keys of a scenario (sorted for determinism)."""
        directory = self.root / scenario
        if not directory.is_dir():
            return []
        return sorted(path.stem for path in directory.glob("*.json"))

    def count(self, scenario: str) -> int:
        return len(self.keys(scenario))

    def scenarios(self) -> List[str]:
        """Scenario names that have at least one cached point."""
        return sorted(
            entry.name
            for entry in self._scenario_dirs()
            if any(entry.glob("*.json"))
        )

    # -- integrity ---------------------------------------------------------

    def verify(self, scenario: Optional[str] = None) -> "VerifyReport":
        """Check every record's integrity without touching anything.

        Scans one scenario (or the whole store) and buckets each record:
        ``ok`` (checksum matches), ``legacy`` (pre-checksum, trusted),
        ``corrupt`` (unreadable JSON / not a record object), or
        ``mismatched`` (checksum does not match the content).  Leftover
        ``.json.tmp`` orphans are reported too — they are gc's business,
        but a verify after a driver SIGKILL should name them.
        """
        report = VerifyReport(scenario=scenario)
        directories = (
            [self.root / scenario]
            if scenario is not None
            else self._scenario_dirs()
        )
        for directory in directories:
            if not directory.is_dir():
                continue
            for orphan in sorted(directory.glob("*.json.tmp")):
                report.orphans.append(orphan)
            for path in sorted(directory.glob("*.json")):
                report.scanned += 1
                try:
                    with open(path, "r", encoding="utf-8") as handle:
                        record = json.load(handle)
                except (OSError, json.JSONDecodeError):
                    report.corrupt.append(path)
                    continue
                status = verify_record(record)
                if status == "ok":
                    report.ok += 1
                elif status == "legacy":
                    report.legacy += 1
                else:
                    report.mismatched.append(path)
        return report

    def repair(self, scenario: Optional[str] = None) -> "VerifyReport":
        """Verify, then quarantine every failed record.

        Bad records move to ``.quarantine/<scenario>/<key>.json`` — the
        store never destroys evidence — and their content keys drop out
        of lookups, so the next ``sweep run``/``resume`` recomputes
        exactly those points.  Returns the verify report with the
        quarantined destinations filled in.
        """
        report = self.verify(scenario)
        for path in report.bad_paths():
            report.quarantined.append(self.quarantine(path))
        return report

    # -- garbage collection ------------------------------------------------

    def gc(
        self,
        keep_latest: bool = False,
        dry_run: bool = False,
        tmp_grace_seconds: float = DEFAULT_TMP_GRACE_SECONDS,
        purge_quarantine: bool = False,
    ) -> "GcReport":
        """Prune what a healthy store should not contain.

        Removes *orphans* — ``.json.tmp`` leftovers of writes interrupted
        before their atomic rename — once they are older than
        ``tmp_grace_seconds`` (a live driver's in-flight tmp file is
        seconds old, so age-gating makes gc safe to run next to a running
        sweep); younger tmp files are reported as *fresh* and kept.
        Always removes *corrupt* records (unreadable JSON; cannot happen
        through :meth:`save`, but gc is the safety net for torn copies
        and manual edits).  With ``keep_latest``, additionally removes
        *stale* records: every record whose :func:`record_generation` is
        below the newest generation present in the store.  Records parked
        by :meth:`repair` are reported in their own *quarantined* bucket
        and only removed under ``purge_quarantine`` — quarantine is
        evidence, purging it is an explicit decision.  Empty directories
        are dropped at the end.

        ``dry_run`` reports what would be removed without touching
        anything.  Pruned points simply recompute on the next sweep —
        the store is a cache, never the source of truth.
        """
        report = GcReport(
            dry_run=dry_run, purge_quarantine=purge_quarantine
        )
        if not self.root.is_dir():
            return report
        directories = self._scenario_dirs()
        now = time.time()
        records: List[Tuple[Path, int]] = []
        for directory in directories:
            for orphan in sorted(directory.glob("*.json.tmp")):
                try:
                    age = now - orphan.stat().st_mtime
                except OSError:
                    continue  # renamed/removed underneath us: not ours
                if age >= tmp_grace_seconds:
                    report.orphans.append(orphan)
                else:
                    report.fresh_tmp.append(orphan)
            # In-flight point claims: a dead owner's (or aged-out) claim
            # is abandoned and collected; a live driver's claim is kept —
            # gc next to a running sweep must never steal its dedup lock.
            for claim in sorted(directory.glob(f"*{CLAIM_SUFFIX}")):
                if self._claim_is_stale(claim, tmp_grace_seconds):
                    report.stale_claims.append(claim)
                else:
                    report.fresh_claims.append(claim)
            for claim_tmp in sorted(directory.glob(f"*{CLAIM_SUFFIX}.tmp")):
                try:
                    age = now - claim_tmp.stat().st_mtime
                except OSError:
                    continue
                if age >= tmp_grace_seconds:
                    report.orphans.append(claim_tmp)
                else:
                    report.fresh_tmp.append(claim_tmp)
            for path in sorted(directory.glob("*.json")):
                try:
                    with open(path, "r", encoding="utf-8") as handle:
                        record = json.load(handle)
                except (OSError, json.JSONDecodeError):
                    report.corrupt.append(path)
                    continue
                if not isinstance(record, dict):
                    # Valid JSON but not a record object (`[]`, `"x"`...):
                    # exactly the manual-edit damage gc exists to prune.
                    report.corrupt.append(path)
                    continue
                records.append((path, record_generation(record)))
        report.scanned = len(records)
        if keep_latest and records:
            newest = max(generation for _, generation in records)
            report.latest_generation = newest
            report.stale.extend(
                path for path, generation in records if generation < newest
            )
        stale_set = set(report.stale)
        report.kept = sum(
            1 for path, _ in records if path not in stale_set
        )
        # Journals whose scenario has no live records are leftovers of a
        # sweep whose store records were pruned (or written elsewhere);
        # age-gate them behind the same grace period as tmp orphans so a
        # sweep that journaled `begin` but has not saved its first point
        # yet is never collected out from under a live driver.  Journal
        # tmp files get the ordinary orphan treatment.
        journal_root = self.root / ".journal"
        if journal_root.is_dir():
            live = {
                directory.name
                for directory in directories
                if any(directory.glob("*.json"))
            }
            for orphan in sorted(journal_root.glob("*.json.tmp")):
                try:
                    age = now - orphan.stat().st_mtime
                except OSError:
                    continue
                if age >= tmp_grace_seconds:
                    report.orphans.append(orphan)
                else:
                    report.fresh_tmp.append(orphan)
            for journal in sorted(journal_root.glob("*.json")):
                if journal.stem in live:
                    continue
                try:
                    age = now - journal.stat().st_mtime
                except OSError:
                    continue
                if age >= tmp_grace_seconds:
                    report.journal_orphans.append(journal)
                else:
                    report.fresh_journals.append(journal)
        quarantine_root = self.root / ".quarantine"
        if quarantine_root.is_dir():
            report.quarantined.extend(sorted(quarantine_root.rglob("*.json")))
        if not dry_run:
            for path in report.removed_paths():
                path.unlink(missing_ok=True)
            sweep_dirs = list(directories)
            if journal_root.is_dir():
                sweep_dirs.append(journal_root)
            if purge_quarantine and quarantine_root.is_dir():
                sweep_dirs.extend(
                    sorted(
                        entry
                        for entry in quarantine_root.iterdir()
                        if entry.is_dir()
                    )
                )
                sweep_dirs.append(quarantine_root)
            for directory in sweep_dirs:
                if directory.is_dir() and not any(directory.iterdir()):
                    directory.rmdir()
        return report


@dataclass
class PointClaim:
    """A held in-flight claim on one point (see :meth:`ResultStore.claim`)."""

    path: Path
    token: str

    def release(self) -> None:
        """Drop the claim iff we still own it; idempotent and race-safe.

        A claim taken over after expiry belongs to the new owner — the
        token check keeps a resumed zombie driver from deleting it.
        """
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, json.JSONDecodeError):
            return
        if isinstance(payload, dict) and payload.get("token") == self.token:
            try:
                self.path.unlink()
            except OSError:
                pass

    def __enter__(self) -> "PointClaim":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.release()


@dataclass
class GcReport:
    """What one :meth:`ResultStore.gc` pass found (and removed)."""

    dry_run: bool = False
    purge_quarantine: bool = False
    scanned: int = 0
    kept: int = 0
    latest_generation: Optional[int] = None
    orphans: List[Path] = field(default_factory=list)
    #: Tmp files younger than the grace period: kept, a live driver may
    #: be about to rename them.
    fresh_tmp: List[Path] = field(default_factory=list)
    corrupt: List[Path] = field(default_factory=list)
    stale: List[Path] = field(default_factory=list)
    #: ``.journal/`` entries whose scenario has no live store records,
    #: past the tmp grace period.
    journal_orphans: List[Path] = field(default_factory=list)
    #: Same, but within the grace period: kept, the sweep may just not
    #: have committed its first point yet.
    fresh_journals: List[Path] = field(default_factory=list)
    #: Abandoned in-flight point claims (owner dead or aged past grace).
    stale_claims: List[Path] = field(default_factory=list)
    #: Claims a live driver still holds: kept.
    fresh_claims: List[Path] = field(default_factory=list)
    #: Records parked under ``.quarantine/`` by :meth:`ResultStore.repair`;
    #: removed only under ``purge_quarantine``.
    quarantined: List[Path] = field(default_factory=list)

    def removed_paths(self) -> List[Path]:
        """Everything this pass removes (or would, under ``dry_run``)."""
        removed = [
            *self.orphans,
            *self.corrupt,
            *self.stale,
            *self.journal_orphans,
            *self.stale_claims,
        ]
        if self.purge_quarantine:
            removed.extend(self.quarantined)
        return removed

    @property
    def removed(self) -> int:
        return len(self.removed_paths())


@dataclass
class VerifyReport:
    """What one :meth:`ResultStore.verify`/:meth:`repair` pass found.

    ``ok``/``legacy`` count healthy records (legacy = pre-checksum,
    trusted as-is); ``corrupt``/``mismatched`` name the damaged files;
    ``quarantined`` names where :meth:`ResultStore.repair` moved them.
    """

    scenario: Optional[str] = None
    scanned: int = 0
    ok: int = 0
    legacy: int = 0
    corrupt: List[Path] = field(default_factory=list)
    mismatched: List[Path] = field(default_factory=list)
    orphans: List[Path] = field(default_factory=list)
    quarantined: List[Path] = field(default_factory=list)

    def bad_paths(self) -> List[Path]:
        """Every record that failed verification."""
        return [*self.corrupt, *self.mismatched]

    @property
    def clean(self) -> bool:
        """True when nothing failed (orphan tmp files are gc's business)."""
        return not self.corrupt and not self.mismatched
