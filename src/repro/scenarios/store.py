"""Content-addressed, resumable result store for scenario sweeps.

Every sweep point is cached as one JSON file whose name is a hash of
everything that determines the point's numbers:

- the scenario *kind* and the point's full parameter set (fixed + axes),
- the trial count and root seed,
- the resolved per-point tolerance,
- the result-shaping engine settings (:class:`~repro.scenarios.spec.EngineSettings`).

Deliberately **excluded** from the key: the scenario's display name and
description (renaming a scenario must not invalidate its results) and the
worker count (the engine's determinism contract guarantees ``jobs`` never
changes results, so serial and parallel runs share cache entries).

Layout::

    <root>/<scenario-name>/<key>.json     # one record per computed point

The scenario directory is a browsing convenience, not part of the
identity: lookups try the scenario's own directory first and then fall
back to any sibling directory holding the same content key, so a renamed
scenario — or a different scenario whose grid overlaps point-for-point —
reuses the cached results instead of recomputing them.

Records are written atomically (temp file + rename), so a sweep killed
mid-write never leaves a truncated record behind — which is what makes
``repro sweep resume`` safe: finished points load from the store, the
interrupted point recomputes.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.scenarios.spec import ScenarioSpec

_KEY_HEX_CHARS = 32  # 128 bits of SHA-256: collision-free at any sweep scale

#: The store-format generation stamped into every record written by this
#: code.  Generation 1 is the PR 2/3 format (no stamp — reads as 1);
#: generation 2 added the stamp itself plus the backend-aware cache-key
#: derivation.  Bump it whenever the record schema changes in a way
#: ``repro sweep gc --keep-latest`` should be able to prune.
STORE_GENERATION = 2

#: What untagged (pre-generation) records read as.
LEGACY_GENERATION = 1


def record_generation(record: Mapping[str, Any]) -> int:
    """The store-format generation of one record (legacy reads as 1)."""
    value = record.get("store_generation", LEGACY_GENERATION)
    return value if isinstance(value, int) and not isinstance(value, bool) else (
        LEGACY_GENERATION
    )


def canonical_json(payload: Any) -> str:
    """Deterministic JSON: sorted keys, no whitespace — the hashing form."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def point_cache_key(
    spec: ScenarioSpec,
    point_values: Mapping[str, Any],
    trials: Optional[int] = None,
    tolerance: Optional[float] = None,
) -> str:
    """The content hash of one sweep point's result.

    ``trials`` defaults to the spec's; ``tolerance`` is the *resolved*
    per-point tolerance (after any schedule), not the base.
    """
    engine_payload = spec.engine.to_dict()
    # A pinned execution backend reaches the key only through its
    # *semantically meaningful* options (BackendSpec.cache_fields) — by
    # the determinism contract transport topology (jobs, workers,
    # chunking) never changes results, and no built-in backend declares
    # any semantic option, so the engine payload here is byte-identical
    # to the pre-backend format and existing stores stay valid.
    engine_payload.pop("backend", None)
    if spec.engine.backend is not None:
        semantic = spec.engine.backend.cache_fields()
        if semantic:
            engine_payload["backend"] = {
                "name": spec.engine.backend.name,
                **semantic,
            }
    payload = {
        "kind": spec.kind,
        "params": {**spec.fixed, **point_values},
        "trials": spec.trials if trials is None else trials,
        "seed": spec.seed,
        "tolerance": tolerance,
        "engine": engine_payload,
    }
    digest = hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()
    return digest[:_KEY_HEX_CHARS]


class ResultStore:
    """A directory of per-point sweep results, keyed by content hash."""

    def __init__(self, root) -> None:
        self.root = Path(root)

    def __repr__(self) -> str:
        return f"ResultStore({str(self.root)!r})"

    def path_for(self, scenario: str, key: str) -> Path:
        return self.root / scenario / f"{key}.json"

    def find(self, scenario: str, key: str) -> Optional[Path]:
        """Locate a content key: the scenario's directory, then any sibling.

        The fallback is what makes the store content-addressed in
        practice: a renamed scenario (or an overlapping grid saved under
        another name) hits the same records instead of recomputing.
        """
        preferred = self.path_for(scenario, key)
        if preferred.is_file():
            return preferred
        if not self.root.is_dir():
            return None
        for entry in sorted(self.root.iterdir()):
            if entry.is_dir():
                candidate = entry / f"{key}.json"
                if candidate.is_file():
                    return candidate
        return None

    def has(self, scenario: str, key: str) -> bool:
        return self.find(scenario, key) is not None

    def load(self, scenario: str, key: str) -> Dict[str, Any]:
        path = self.find(scenario, key)
        if path is None:
            raise FileNotFoundError(
                f"no cached record for key {key!r} (scenario {scenario!r}) "
                f"under {self.root}"
            )
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)

    def save(self, scenario: str, key: str, record: Mapping[str, Any]) -> Path:
        """Atomically persist one point record (temp file + rename).

        Every record is stamped with the current store-format
        :data:`STORE_GENERATION` so ``gc(keep_latest=True)`` can prune
        records written by older formats.
        """
        stamped = {**record, "store_generation": STORE_GENERATION}
        path = self.path_for(scenario, key)
        path.parent.mkdir(parents=True, exist_ok=True)
        temp = path.with_suffix(".json.tmp")
        with open(temp, "w", encoding="utf-8") as handle:
            json.dump(stamped, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(temp, path)
        return path

    def keys(self, scenario: str) -> List[str]:
        """The cached point keys of a scenario (sorted for determinism)."""
        directory = self.root / scenario
        if not directory.is_dir():
            return []
        return sorted(path.stem for path in directory.glob("*.json"))

    def count(self, scenario: str) -> int:
        return len(self.keys(scenario))

    def scenarios(self) -> List[str]:
        """Scenario names that have at least one cached point."""
        if not self.root.is_dir():
            return []
        return sorted(
            entry.name
            for entry in self.root.iterdir()
            if entry.is_dir() and any(entry.glob("*.json"))
        )

    # -- garbage collection ------------------------------------------------

    def gc(self, keep_latest: bool = False, dry_run: bool = False) -> "GcReport":
        """Prune what a healthy store should not contain.

        Always removes *orphans* — ``.json.tmp`` leftovers of writes
        interrupted before their atomic rename — and *corrupt* records
        (unreadable JSON; cannot happen through :meth:`save`, but gc is
        the safety net for torn copies and manual edits).  With
        ``keep_latest``, additionally removes *stale* records: every
        record whose :func:`record_generation` is below the newest
        generation present in the store.  Empty scenario directories
        are dropped at the end.

        ``dry_run`` reports what would be removed without touching
        anything.  Pruned points simply recompute on the next sweep —
        the store is a cache, never the source of truth.
        """
        report = GcReport(dry_run=dry_run)
        if not self.root.is_dir():
            return report
        directories = sorted(
            entry for entry in self.root.iterdir() if entry.is_dir()
        )
        records: List[Tuple[Path, int]] = []
        for directory in directories:
            for orphan in sorted(directory.glob("*.json.tmp")):
                report.orphans.append(orphan)
            for path in sorted(directory.glob("*.json")):
                try:
                    with open(path, "r", encoding="utf-8") as handle:
                        record = json.load(handle)
                except (OSError, json.JSONDecodeError):
                    report.corrupt.append(path)
                    continue
                if not isinstance(record, dict):
                    # Valid JSON but not a record object (`[]`, `"x"`...):
                    # exactly the manual-edit damage gc exists to prune.
                    report.corrupt.append(path)
                    continue
                records.append((path, record_generation(record)))
        report.scanned = len(records)
        if keep_latest and records:
            newest = max(generation for _, generation in records)
            report.latest_generation = newest
            report.stale.extend(
                path for path, generation in records if generation < newest
            )
        stale_set = set(report.stale)
        report.kept = sum(
            1 for path, _ in records if path not in stale_set
        )
        if not dry_run:
            for path in report.removed_paths():
                path.unlink(missing_ok=True)
            for directory in directories:
                if not any(directory.iterdir()):
                    directory.rmdir()
        return report


@dataclass
class GcReport:
    """What one :meth:`ResultStore.gc` pass found (and removed)."""

    dry_run: bool = False
    scanned: int = 0
    kept: int = 0
    latest_generation: Optional[int] = None
    orphans: List[Path] = field(default_factory=list)
    corrupt: List[Path] = field(default_factory=list)
    stale: List[Path] = field(default_factory=list)

    def removed_paths(self) -> List[Path]:
        """Everything this pass removes (or would, under ``dry_run``)."""
        return [*self.orphans, *self.corrupt, *self.stale]

    @property
    def removed(self) -> int:
        return len(self.removed_paths())
