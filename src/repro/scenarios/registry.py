"""The built-in scenario registry.

Every figure the repository reproduces ships as a named, declarative
scenario — the same per-point code ``repro figures`` runs, so both paths
produce identical numbers for a seed — plus new workloads the bespoke
drivers never covered (scheme matrix at a fixed budget, (k, l) sensitivity,
the adaptive adversary, heavy churn) and a tiny 2-point smoke scenario CI
sweeps end-to-end.

Axis values intentionally mirror the drivers' default sweeps (including
their float spellings — point labels embed them, so ``3.0`` and ``3``
would be different random streams).
"""

from __future__ import annotations

from typing import Dict, List

from repro.scenarios.spec import (
    Axis,
    ScenarioSpec,
    ToleranceRule,
    ToleranceSchedule,
)

# The malicious-rate sweep every figure shares: 0.00, 0.05, ..., 0.50.
P_SWEEP = tuple(round(0.05 * i, 2) for i in range(11))

# Resilience curves move fastest on the knee between "holds" and
# "collapses" (p ≈ 0.25–0.45 for the planned configurations); when a base
# tolerance is set, spend the extra trials exactly there.
KNEE_SCHEDULE = ToleranceSchedule(
    rules=(ToleranceRule(axis="p", low=0.25, high=0.45, scale=0.5),)
)

_MULTIPATH_SCHEMES = ("central", "disjoint", "joint")
_CHURN_SCHEMES = ("central", "disjoint", "joint", "share")


def _fig6(name: str, population_size: int, measure: bool) -> ScenarioSpec:
    panel = {"fig6a": "(a)", "fig6b": "(b)", "fig6c": "(c)", "fig6d": "(d)"}[name]
    quantity = "attack resilience R" if measure else "required nodes C"
    # Measuring specs pin the Monte-Carlo lane explicitly: the kernel is
    # part of the point's parameter set, so it lands in the result-store
    # cache key and a cached scalar-lane record can never be served for a
    # vectorised-lane request (the lanes agree statistically, not
    # bit-for-bit).
    fixed = {"population_size": population_size, "measure": measure}
    if measure:
        fixed["kernel"] = "vectorized"
    return ScenarioSpec(
        name=name,
        kind="attack_resilience",
        description=(
            f"Fig. 6{panel}: {quantity} vs malicious rate p, "
            f"N = {population_size:,}"
        ),
        fixed=fixed,
        axes=(
            Axis("scheme", _MULTIPATH_SCHEMES),
            Axis("p", P_SWEEP),
        ),
        trials=400 if measure else 0,
        seed=2017,
        schedule=KNEE_SCHEDULE if measure else None,
        value_key="value" if measure else "cost",
    )


def _builtin_list() -> List[ScenarioSpec]:
    return [
        # -- the paper's figures ------------------------------------------
        _fig6("fig6a", 10000, True),
        _fig6("fig6b", 10000, False),
        _fig6("fig6c", 100, True),
        _fig6("fig6d", 100, False),
        ScenarioSpec(
            name="fig7",
            kind="churn_resilience",
            description=(
                "Fig. 7: resilience under churn, α = T/t_life panels "
                "{1, 2, 3, 5} × malicious rate × all four schemes"
            ),
            fixed={"population_size": 10000},
            axes=(
                Axis("alpha", (1.0, 2.0, 3.0, 5.0)),
                Axis("p", P_SWEEP),
                Axis("scheme", _CHURN_SCHEMES),
            ),
            trials=1000,
            seed=2017,
            schedule=KNEE_SCHEDULE,
        ),
        ScenarioSpec(
            name="fig8",
            kind="share_cost",
            description=(
                "Fig. 8: key-share routing resilience vs available-node "
                "budget N at α = 3"
            ),
            fixed={"alpha": 3.0},
            axes=(
                Axis("budget", (100, 1000, 5000, 10000)),
                Axis("p", P_SWEEP),
            ),
            trials=1000,
            seed=2017,
        ),
        # -- the extension sweeps -----------------------------------------
        ScenarioSpec(
            name="availability",
            kind="availability",
            description=(
                "Extension: transient unavailability (§II-C's second churn "
                "kind) — resilience vs p per uptime level"
            ),
            fixed={"population_size": 10000},
            axes=(
                Axis("uptime", (1.0, 0.95, 0.9, 0.8)),
                Axis("p", (0.0, 0.1, 0.2, 0.3)),
                Axis("scheme", ("disjoint", "joint", "share")),
            ),
            trials=1000,
            seed=2017,
        ),
        ScenarioSpec(
            name="timeliness",
            kind="timeliness",
            description=(
                "Extension: end-to-end release lateness (arrival − tr) per "
                "scheme and latency regime; trials = protocol runs per point"
            ),
            fixed={"path_length": 3},
            axes=(
                Axis("scheme", _CHURN_SCHEMES),
                Axis("max_latency", (0.05, 0.5)),
            ),
            trials=10,
            seed=31337,
        ),
        # -- new workloads beyond the bespoke drivers ---------------------
        ScenarioSpec(
            name="scheme-matrix-n1000",
            kind="attack_resilience",
            description=(
                "Scheme-comparison matrix at a fixed deployment budget of "
                "N = 1,000 nodes — between Fig. 6's 10,000 and 100 panels, "
                "the budget a mid-size overlay actually has"
            ),
            fixed={
                "population_size": 1000,
                "measure": True,
                "kernel": "vectorized",
            },
            axes=(
                Axis("scheme", _MULTIPATH_SCHEMES),
                Axis("p", P_SWEEP),
            ),
            trials=400,
            seed=2017,
            schedule=KNEE_SCHEDULE,
        ),
        ScenarioSpec(
            name="sensitivity-grid",
            kind="sensitivity",
            description=(
                "Sensitivity sweep over the (replication k × path length l) "
                "grid at p = 0.2: the resilience surface the Fig. 6 planner "
                "walks, exposed point by point"
            ),
            fixed={"p": 0.2, "population_size": 2000, "kernel": "vectorized"},
            axes=(
                Axis("scheme", ("disjoint", "joint")),
                Axis("replication", (2, 3, 4, 5)),
                Axis("path_length", (3, 4, 6, 8)),
            ),
            trials=300,
            seed=2017,
        ),
        ScenarioSpec(
            name="adaptive-observation",
            kind="adaptive",
            description=(
                "Adaptive traffic-observing adversary: resilience vs "
                "observation rate with a fixed targeted-corruption budget "
                "on a 3×4 grid, N = 10,000"
            ),
            fixed={
                "seed_rate": 0.02,
                "budget": 8,
                "replication": 3,
                "path_length": 4,
                "population_size": 10000,
            },
            axes=(
                Axis("scheme", ("disjoint", "joint")),
                Axis("observation_rate", (0.0, 0.25, 0.5, 0.75, 1.0)),
            ),
            trials=300,
            seed=4242,
        ),
        ScenarioSpec(
            name="heavy-churn",
            kind="churn_resilience",
            description=(
                "Heavy-churn grid far beyond the paper's α ≤ 5: does "
                "Algorithm 1's churn-aware planning still dominate when "
                "nodes turn over 8–12 lifetimes per emerging period?"
            ),
            fixed={"population_size": 10000},
            axes=(
                Axis("alpha", (5.0, 8.0, 12.0)),
                Axis("p", P_SWEEP),
                Axis("scheme", _CHURN_SCHEMES),
            ),
            trials=1000,
            seed=2017,
            schedule=KNEE_SCHEDULE,
        ),
        # -- epoch churn simulator (repro.epoch) --------------------------
        ScenarioSpec(
            name="availability-1e6",
            kind="availability",
            description=(
                "Million-node epoch-churn availability: resilience vs p "
                "per scheme, measured (not approximated) on a 10^6-node "
                "population with lifetime churn and repair"
            ),
            fixed={
                "population_size": 1_000_000,
                "kernel": "epoch",
                "alpha": 2.0,
                "uptime": 0.9,
            },
            axes=(
                Axis("scheme", ("disjoint", "joint")),
                Axis("p", (0.1, 0.2, 0.3)),
            ),
            trials=200,
            seed=2017,
        ),
        ScenarioSpec(
            name="timeliness-1e6",
            kind="timeliness",
            description=(
                "Million-node epoch-churn timeliness: delivery rate and "
                "lateness (in holding epochs past the nominal schedule) "
                "vs p, with per-epoch retry up to 8 epochs"
            ),
            fixed={
                "population_size": 1_000_000,
                "kernel": "epoch",
                "alpha": 2.0,
                "uptime": 0.9,
                "path_length": 4,
                "retry_epochs": 8,
                "max_latency": 0.0,
            },
            axes=(
                Axis("scheme", ("disjoint", "joint")),
                Axis("p", (0.0, 0.1, 0.2)),
            ),
            trials=400,
            seed=31337,
        ),
        ScenarioSpec(
            name="epoch-churn-grid",
            kind="availability",
            description=(
                "Churn-rate sensitivity grid: availability vs alpha per "
                "lifetime distribution (exponential/Weibull/Pareto) at "
                "p = 0.2 on a 10^5-node epoch simulation"
            ),
            fixed={
                "population_size": 100_000,
                "kernel": "epoch",
                "uptime": 0.9,
                "p": 0.2,
            },
            axes=(
                Axis("alpha", (0.5, 1.0, 2.0, 4.0)),
                Axis("lifetime", ("exponential", "weibull", "pareto")),
                Axis("scheme", ("disjoint", "joint")),
            ),
            trials=300,
            seed=2017,
        ),
        # -- CI / quickstart ----------------------------------------------
        ScenarioSpec(
            name="epoch-smoke",
            kind="availability",
            description=(
                "Capped-size epoch-kernel smoke: one 10^5-node availability "
                "point through the orchestrator — what the epoch-smoke CI "
                "job runs"
            ),
            fixed={
                "population_size": 100_000,
                "kernel": "epoch",
                "alpha": 2.0,
                "uptime": 0.9,
                "scheme": "joint",
            },
            axes=(Axis("p", (0.1,)),),
            trials=100,
            seed=7,
        ),
        ScenarioSpec(
            name="smoke",
            kind="attack_resilience",
            description=(
                "Tiny 2-point end-to-end sweep (joint scheme, N = 500) — "
                "what CI runs to exercise the orchestrator and store"
            ),
            fixed={
                "scheme": "joint",
                "population_size": 500,
                "measure": True,
                "kernel": "vectorized",
            },
            axes=(Axis("p", (0.1, 0.3)),),
            trials=40,
            seed=99,
        ),
    ]


_CACHE: Dict[str, ScenarioSpec] = {}


def builtin_scenarios() -> Dict[str, ScenarioSpec]:
    """Name → spec for every registered scenario."""
    if not _CACHE:
        for spec in _builtin_list():
            if spec.name in _CACHE:
                raise ValueError(f"duplicate scenario name {spec.name!r}")
            _CACHE[spec.name] = spec
    return dict(_CACHE)


def scenario_names() -> List[str]:
    return sorted(builtin_scenarios())


def get_scenario(name: str) -> ScenarioSpec:
    scenarios = builtin_scenarios()
    if name not in scenarios:
        raise ValueError(
            f"unknown scenario {name!r}; registered: {', '.join(sorted(scenarios))}"
        )
    return scenarios[name]
