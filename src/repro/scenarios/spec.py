"""Declarative scenario specifications.

A :class:`ScenarioSpec` is a complete, serializable description of one
workload: which experiment *kind* runs (see :mod:`repro.scenarios.runners`
for the registered kinds), the fixed parameters every point shares, the
sweep axes whose cross product forms the point grid, and the Monte-Carlo
budget (trials, seed, tolerance, engine settings).

Specs are frozen dataclasses with a loss-free dict/JSON round trip
(``spec == ScenarioSpec.from_json(spec.to_json())``), which is what makes
the result store content-addressable: the cache key of a sweep point is a
hash over the serialized spec identity, never over Python object ids.
Every parameter and axis value must therefore be a JSON scalar.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from itertools import product
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.experiments.engine import (
    DEFAULT_CHECK_INTERVAL,
    DEFAULT_CHECKPOINT_BATCHES,
    DEFAULT_MIN_TRIALS,
)
from repro.util.validation import check_positive, check_positive_int

_SCALAR_TYPES = (str, int, float, bool, type(None))


def _check_scalar(value: Any, where: str) -> Any:
    if not isinstance(value, _SCALAR_TYPES):
        raise TypeError(
            f"{where} must be a JSON scalar (str/int/float/bool/None), "
            f"got {type(value).__name__}"
        )
    return value


@dataclass(frozen=True)
class Axis:
    """One sweep dimension: a parameter name and the values it takes."""

    name: str
    values: Tuple[Any, ...]

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not self.name:
            raise ValueError(f"axis name must be a non-empty string, got {self.name!r}")
        object.__setattr__(self, "values", tuple(self.values))
        if not self.values:
            raise ValueError(f"axis {self.name!r} has no values")
        for value in self.values:
            _check_scalar(value, f"axis {self.name!r} value")

    def to_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "values": list(self.values)}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Axis":
        return cls(name=payload["name"], values=tuple(payload["values"]))


@dataclass(frozen=True)
class ToleranceRule:
    """Scale the base tolerance when an axis value falls in a window.

    The registered Fig. 6/7 scenarios use this to tighten tolerance near
    the knee of the resilience curves, where the estimate moves fastest.
    """

    axis: str
    low: float
    high: float
    scale: float

    def __post_init__(self) -> None:
        if not isinstance(self.axis, str) or not self.axis:
            raise ValueError(f"rule axis must be a non-empty string, got {self.axis!r}")
        if self.low > self.high:
            raise ValueError(
                f"rule window is empty: low {self.low} > high {self.high}"
            )
        check_positive(self.scale, "scale")

    def matches(self, values: Mapping[str, Any]) -> bool:
        value = values.get(self.axis)
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            return False
        return self.low <= value <= self.high

    def to_dict(self) -> Dict[str, Any]:
        return {
            "axis": self.axis,
            "low": self.low,
            "high": self.high,
            "scale": self.scale,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ToleranceRule":
        return cls(
            axis=payload["axis"],
            low=payload["low"],
            high=payload["high"],
            scale=payload["scale"],
        )


@dataclass(frozen=True)
class ToleranceSchedule:
    """A per-point tolerance policy: the first matching rule scales the base.

    The schedule only shapes a tolerance that is already on — with no base
    tolerance the sweep runs every trial and results stay bit-identical to
    the historical figure drivers.
    """

    rules: Tuple[ToleranceRule, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "rules", tuple(self.rules))

    def resolve(
        self, values: Mapping[str, Any], base: Optional[float]
    ) -> Optional[float]:
        """The tolerance of the point with parameter ``values``."""
        if base is None:
            return None
        for rule in self.rules:
            if rule.matches(values):
                return base * rule.scale
        return base

    def to_dict(self) -> Dict[str, Any]:
        return {"rules": [rule.to_dict() for rule in self.rules]}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ToleranceSchedule":
        return cls(
            rules=tuple(ToleranceRule.from_dict(rule) for rule in payload["rules"])
        )


@dataclass(frozen=True)
class EngineSettings:
    """The result-shaping engine knobs a spec pins down.

    ``jobs`` is deliberately absent: by the engine's determinism contract
    the worker count never changes results, so it is a run-time choice
    (CLI ``--jobs``) and is excluded from result-store cache keys.

    ``backend`` optionally pins an execution backend
    (:class:`~repro.backends.base.BackendSpec`) for the whole scenario —
    a run-time ``--backend`` flag or orchestrator argument still wins.
    By the same contract a backend never changes results either, so only
    its *semantically meaningful* options (see
    :meth:`BackendSpec.cache_fields`; none, for every built-in backend)
    ever reach a cache key, and ``to_dict`` omits the field entirely
    when unset so pre-backend stores stay valid byte-for-byte.
    """

    min_trials: int = DEFAULT_MIN_TRIALS
    check_interval: int = DEFAULT_CHECK_INTERVAL
    checkpoint_batches: int = DEFAULT_CHECKPOINT_BATCHES
    ci_method: str = "normal"
    batch_size: Optional[int] = None
    backend: Optional[Any] = None

    def __post_init__(self) -> None:
        check_positive_int(self.min_trials, "min_trials")
        check_positive_int(self.check_interval, "check_interval")
        check_positive_int(self.checkpoint_batches, "checkpoint_batches")
        if self.ci_method not in ("normal", "wilson"):
            raise ValueError(
                f"ci_method must be 'normal' or 'wilson', got {self.ci_method!r}"
            )
        if self.batch_size is not None:
            check_positive_int(self.batch_size, "batch_size")
        if self.backend is not None:
            from repro.backends.base import BackendSpec

            if isinstance(self.backend, Mapping):
                object.__setattr__(
                    self, "backend", BackendSpec.from_dict(self.backend)
                )
            elif isinstance(self.backend, str):
                object.__setattr__(self, "backend", BackendSpec(self.backend))
            elif not isinstance(self.backend, BackendSpec):
                raise TypeError(
                    "engine backend must be a BackendSpec, a backend name, "
                    f"or a serialized dict, got {type(self.backend).__name__}"
                )

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "min_trials": self.min_trials,
            "check_interval": self.check_interval,
            "checkpoint_batches": self.checkpoint_batches,
            "ci_method": self.ci_method,
            "batch_size": self.batch_size,
        }
        # Omitted when unset so every pre-backend serialized spec — and,
        # critically, every pre-backend result-store cache key derived
        # from this dict — stays byte-identical.
        if self.backend is not None:
            payload["backend"] = self.backend.to_dict()
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "EngineSettings":
        return cls(**dict(payload))


@dataclass(frozen=True)
class SweepPoint:
    """One expanded grid point: its index and the axis values it binds."""

    index: int
    values: Dict[str, Any]

    def params(self, spec: "ScenarioSpec") -> Dict[str, Any]:
        """The full parameter set: fixed parameters plus this point's axes."""
        return {**spec.fixed, **self.values}


@dataclass(frozen=True)
class ScenarioSpec:
    """A complete declarative workload description.

    Parameters
    ----------
    name:
        Registry/store identifier.
    kind:
        Which point runner executes each grid point (see
        :func:`repro.scenarios.runners.get_runner`).
    fixed:
        Parameters shared by every point (e.g. ``population_size``).
    axes:
        Sweep dimensions; their cross product (last axis fastest) is the
        point grid.
    trials:
        Monte-Carlo trials per point (``0`` = measurement-free points).
    seed:
        Root seed; per-trial streams derive from it deterministically.
    tolerance:
        Default adaptive-stopping base tolerance (``None`` = run every
        trial — required for bit-identity with the figure drivers).
    schedule:
        Optional per-point tolerance schedule applied to the base.
    engine:
        The result-shaping engine settings.
    value_key:
        Which result field reporting pivots into tables (default the
        runner's headline ``"value"``; the Fig. 6 cost panels use
        ``"cost"``).
    """

    name: str
    kind: str
    description: str = ""
    fixed: Dict[str, Any] = field(default_factory=dict)
    axes: Tuple[Axis, ...] = ()
    trials: int = 400
    seed: int = 2017
    tolerance: Optional[float] = None
    schedule: Optional[ToleranceSchedule] = None
    engine: EngineSettings = field(default_factory=EngineSettings)
    value_key: str = "value"

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not self.name:
            raise ValueError(f"scenario name must be a non-empty string, got {self.name!r}")
        if not isinstance(self.kind, str) or not self.kind:
            raise ValueError(f"scenario kind must be a non-empty string, got {self.kind!r}")
        object.__setattr__(self, "fixed", dict(self.fixed))
        object.__setattr__(self, "axes", tuple(self.axes))
        check_positive_int(self.trials, "trials", minimum=0)
        if not isinstance(self.seed, int) or isinstance(self.seed, bool):
            raise TypeError(f"seed must be an int, got {type(self.seed).__name__}")
        if self.tolerance is not None:
            check_positive(self.tolerance, "tolerance")
        if not isinstance(self.value_key, str) or not self.value_key:
            raise ValueError(
                f"value_key must be a non-empty string, got {self.value_key!r}"
            )
        for key, value in self.fixed.items():
            if not isinstance(key, str) or not key:
                raise ValueError(f"fixed parameter name must be a string, got {key!r}")
            _check_scalar(value, f"fixed parameter {key!r}")
        seen = set(self.fixed)
        for axis in self.axes:
            if axis.name in seen:
                raise ValueError(
                    f"axis {axis.name!r} duplicates another axis or fixed parameter"
                )
            seen.add(axis.name)

    # -- grid expansion ----------------------------------------------------

    @property
    def axis_names(self) -> Tuple[str, ...]:
        return tuple(axis.name for axis in self.axes)

    @property
    def point_count(self) -> int:
        count = 1
        for axis in self.axes:
            count *= len(axis.values)
        return count

    def points(self) -> List[SweepPoint]:
        """Expand the axes into the point grid (last axis fastest)."""
        if not self.axes:
            return [SweepPoint(index=0, values={})]
        names = self.axis_names
        return [
            SweepPoint(index=index, values=dict(zip(names, combo)))
            for index, combo in enumerate(
                product(*(axis.values for axis in self.axes))
            )
        ]

    def point_tolerance(
        self, values: Mapping[str, Any], base: Optional[float] = None
    ) -> Optional[float]:
        """Resolve the tolerance of one point under the spec's schedule.

        ``base`` overrides the spec's default base tolerance (the CLI's
        ``--tolerance`` flag lands here); the schedule then shapes it.
        """
        effective = self.tolerance if base is None else base
        if self.schedule is None:
            return effective
        return self.schedule.resolve({**self.fixed, **values}, effective)

    def with_overrides(
        self,
        trials: Optional[int] = None,
        seed: Optional[int] = None,
        tolerance: Optional[float] = None,
    ) -> "ScenarioSpec":
        """A copy with run-time overrides applied (None keeps the spec's)."""
        changes: Dict[str, Any] = {}
        if trials is not None:
            changes["trials"] = trials
        if seed is not None:
            changes["seed"] = seed
        if tolerance is not None:
            changes["tolerance"] = tolerance
        return replace(self, **changes) if changes else self

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "kind": self.kind,
            "description": self.description,
            "fixed": dict(self.fixed),
            "axes": [axis.to_dict() for axis in self.axes],
            "trials": self.trials,
            "seed": self.seed,
            "tolerance": self.tolerance,
            "schedule": self.schedule.to_dict() if self.schedule else None,
            "engine": self.engine.to_dict(),
            "value_key": self.value_key,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ScenarioSpec":
        schedule = payload.get("schedule")
        return cls(
            name=payload["name"],
            kind=payload["kind"],
            description=payload.get("description", ""),
            fixed=dict(payload.get("fixed", {})),
            axes=tuple(Axis.from_dict(axis) for axis in payload.get("axes", ())),
            trials=payload.get("trials", 400),
            seed=payload.get("seed", 2017),
            tolerance=payload.get("tolerance"),
            schedule=ToleranceSchedule.from_dict(schedule) if schedule else None,
            engine=EngineSettings.from_dict(payload.get("engine", {})),
            value_key=payload.get("value_key", "value"),
        )

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=(indent is None))

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        return cls.from_dict(json.loads(text))
