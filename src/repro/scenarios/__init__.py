"""Declarative scenarios: specs, registry, sweep orchestration, result store.

The subsystem that turns the repository's figure drivers into data:

- :mod:`repro.scenarios.spec` — frozen, JSON-round-trippable
  :class:`ScenarioSpec` dataclasses describing a complete workload;
- :mod:`repro.scenarios.registry` — every paper figure and extension as a
  named scenario, plus new workloads the bespoke drivers never covered;
- :mod:`repro.scenarios.runners` — per-kind point runners (register your
  own with :func:`register_kind` to declare a brand-new workload);
- :mod:`repro.scenarios.orchestrator` — grid expansion, one shared
  executor pool per sweep, per-point tolerance schedules;
- :mod:`repro.scenarios.store` — the content-addressed result store that
  makes sweeps incremental and resumable.

CLI: ``repro scenarios list/show`` and ``repro sweep run/resume``.
"""

from repro.scenarios.journal import (
    JournalBusyError,
    JournalOwnershipLost,
    SweepJournal,
    sweep_spec_hash,
)
from repro.scenarios.orchestrator import (
    SweepOrchestrator,
    SweepReport,
    run_scenario,
)
from repro.scenarios.registry import builtin_scenarios, get_scenario, scenario_names
from repro.scenarios.runners import get_runner, kind_names, register_kind
from repro.scenarios.spec import (
    Axis,
    EngineSettings,
    ScenarioSpec,
    SweepPoint,
    ToleranceRule,
    ToleranceSchedule,
)
from repro.scenarios.store import (
    PointClaim,
    ResultStore,
    StoreIntegrityError,
    VerifyReport,
    point_cache_key,
)

__all__ = [
    "Axis",
    "EngineSettings",
    "JournalBusyError",
    "JournalOwnershipLost",
    "PointClaim",
    "ResultStore",
    "ScenarioSpec",
    "StoreIntegrityError",
    "SweepJournal",
    "SweepOrchestrator",
    "SweepPoint",
    "SweepReport",
    "ToleranceRule",
    "ToleranceSchedule",
    "VerifyReport",
    "builtin_scenarios",
    "get_runner",
    "get_scenario",
    "kind_names",
    "point_cache_key",
    "register_kind",
    "run_scenario",
    "scenario_names",
    "sweep_spec_hash",
]
