"""Malicious population marking (Sybil / Eclipse outcome).

Mirrors the paper's experimental setup: "We randomly select ``10000 * p``
non-repeated nodes and mark them as malicious."  The population can mark
either concrete :class:`~repro.dht.node_id.NodeId` objects from an overlay
or opaque ids used by the epoch Monte Carlo, and can extend the marking to
nodes that join later (replacements are malicious with probability ``p``,
the assumption §III-D's exposure argument rests on).
"""

from __future__ import annotations

from typing import Hashable, Iterable, Optional, Sequence, Set

from repro.util.rng import RandomSource
from repro.util.validation import check_probability


class SybilPopulation:
    """The set of adversary-controlled node identities."""

    def __init__(
        self,
        malicious_rate: float,
        rng: RandomSource,
    ) -> None:
        self.malicious_rate = check_probability(malicious_rate, "malicious_rate")
        self._rng = rng
        self._malicious: Set[Hashable] = set()
        self._decided: Set[Hashable] = set()
        # Ids in [0, _decided_index_prefix) are decided without being
        # materialised in _decided — the index-population fast path.
        self._decided_index_prefix = 0

    # -- bulk marking ------------------------------------------------------

    def mark_population(self, node_ids: Sequence[Hashable]) -> Set[Hashable]:
        """Mark exactly ``round(len(node_ids) * p)`` distinct nodes malicious.

        This is the paper's finite-population marking (sampling without
        replacement), as opposed to independent per-node coin flips; for a
        10,000-node network the difference is within Monte-Carlo noise, but
        tests pin the exact count.
        """
        count = round(len(node_ids) * self.malicious_rate)
        chosen = set(self._rng.sample(list(node_ids), count))
        self._malicious |= chosen
        self._decided |= set(node_ids)
        return chosen

    def mark_index_population(self, population_size: int) -> Set[int]:
        """Mark an id population of ``range(population_size)`` without
        materialising it.

        Draw-for-draw identical to ``mark_population(list(range(N)))`` —
        ``random.sample`` consumes the same stream for any same-length
        sequence — but stores only the ``round(N * p)`` malicious ids: the
        N-element decided set is replaced by the interval bookkeeping the
        membership tests below read.  This is the Monte-Carlo hot path
        (one marking per attack trial).
        """
        count = round(population_size * self.malicious_rate)
        chosen = set(self._rng.sample_indices(population_size, count))
        self._malicious |= chosen
        self._decided_index_prefix = max(
            self._decided_index_prefix, population_size
        )
        return chosen

    def _is_decided(self, node_id: Hashable) -> bool:
        if node_id in self._decided:
            return True
        return (
            type(node_id) is int and 0 <= node_id < self._decided_index_prefix
        )

    # -- incremental marking -----------------------------------------------

    def decide(self, node_id: Hashable) -> bool:
        """Decide (once, memoized) whether a node is malicious.

        Used for nodes that join after the initial marking — replacement
        nodes created by churn repair.  Each is malicious independently with
        probability ``p``.
        """
        if not self._is_decided(node_id):
            self._decided.add(node_id)
            if self._rng.bernoulli(self.malicious_rate):
                self._malicious.add(node_id)
        return node_id in self._malicious

    def is_malicious(self, node_id: Hashable) -> bool:
        """Query without deciding; unknown nodes are honest."""
        return node_id in self._malicious

    def force_malicious(self, node_ids: Iterable[Hashable]) -> None:
        """Explicitly corrupt specific nodes (tests, worst-case scenarios)."""
        for node_id in node_ids:
            self._decided.add(node_id)
            self._malicious.add(node_id)

    def force_honest(self, node_ids: Iterable[Hashable]) -> None:
        """Explicitly pin specific nodes honest."""
        for node_id in node_ids:
            self._decided.add(node_id)
            self._malicious.discard(node_id)

    @property
    def malicious_count(self) -> int:
        return len(self._malicious)

    def malicious_ids(self) -> Set[Hashable]:
        return set(self._malicious)

    def honest_fraction_of(self, node_ids: Sequence[Hashable]) -> float:
        """Fraction of a concrete node set that is honest (diagnostics)."""
        if not node_ids:
            raise ValueError("node set must be non-empty")
        honest = sum(1 for node_id in node_ids if node_id not in self._malicious)
        return honest / len(node_ids)


def mark_overlay(
    overlay_ids: Sequence[Hashable],
    malicious_rate: float,
    seed: int = 97,
    rng: Optional[RandomSource] = None,
) -> SybilPopulation:
    """Convenience: build a population and mark an overlay in one call."""
    if rng is None:
        rng = RandomSource(seed, label="sybil")
    population = SybilPopulation(malicious_rate, rng)
    population.mark_population(overlay_ids)
    return population
