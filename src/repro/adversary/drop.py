"""The drop attack (paper §II-B.2).

Goal: make the secret key unavailable at the release time.  A malicious
holder simply refuses to forward whatever it receives.  The structural
success conditions differ per scheme:

- **node-disjoint** (Eq. 2): every one of the ``k`` disjoint paths must be
  cut, i.e. contain at least one malicious holder.
- **node-joint** (Eq. 3): the onion flows through whole columns, so the
  adversary must own an *entire column* to stop it.
- **key-share routing**: a column is stopped when fewer than ``m`` of its
  ``n`` shares survive, i.e. at least ``n - m + 1`` carriers are malicious
  (churn-dead carriers count toward the same budget; the epoch Monte Carlo
  handles that variant).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, List, Optional, Sequence

from repro.adversary.population import SybilPopulation


@dataclass(frozen=True)
class DropResult:
    """Outcome of a drop evaluation against one key's structure."""

    succeeded: bool
    cut_positions: List[int] = field(default_factory=list)
    surviving_routes: int = 0

    @property
    def resilient(self) -> bool:
        return not self.succeeded


class DropAttack:
    """Static (no-churn) drop evaluation against holder structures."""

    def __init__(self, population: SybilPopulation) -> None:
        self.population = population

    def evaluate_disjoint(self, rows: Sequence[Sequence[Hashable]]) -> DropResult:
        """Node-disjoint grid given as rows (paths).

        The onion of path ``i`` visits exactly row ``i``; one malicious
        holder anywhere on the row cuts it.  Success = all rows cut.
        """
        if not rows:
            raise ValueError("grid must have at least one row")
        cut: List[int] = []
        surviving = 0
        for index, row in enumerate(rows, start=1):
            if not row:
                raise ValueError(f"row {index} has no holders")
            if any(self.population.is_malicious(holder) for holder in row):
                cut.append(index)
            else:
                surviving += 1
        return DropResult(
            succeeded=surviving == 0, cut_positions=cut, surviving_routes=surviving
        )

    def evaluate_joint(self, columns: Sequence[Sequence[Hashable]]) -> DropResult:
        """Node-joint grid given as columns.

        Every holder of column ``j`` forwards to every holder of column
        ``j + 1``, so the package survives a column as long as one honest
        holder remains in it.  Success = some column fully malicious.
        """
        if not columns:
            raise ValueError("grid must have at least one column")
        cut: List[int] = []
        for index, column in enumerate(columns, start=1):
            if not column:
                raise ValueError(f"column {index} has no holders")
            if all(self.population.is_malicious(holder) for holder in column):
                cut.append(index)
        surviving = 0 if cut else 1
        return DropResult(
            succeeded=bool(cut), cut_positions=cut, surviving_routes=surviving
        )

    def evaluate_share_column(
        self,
        holders: Sequence[Hashable],
        threshold: int,
        dead: Optional[Sequence[Hashable]] = None,
    ) -> bool:
        """Is one share column stopped?

        The column forwards successfully iff at least ``threshold`` shares
        are carried by honest, alive holders.  ``dead`` lists carriers lost
        to churn during the holding period.
        """
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        dead_set = set(dead) if dead is not None else set()
        surviving = sum(
            1
            for holder in holders
            if holder not in dead_set and not self.population.is_malicious(holder)
        )
        return surviving < threshold

    def evaluate_share_lattice(
        self,
        columns: Sequence[Sequence[Hashable]],
        thresholds: Sequence[int],
        dead_by_column: Optional[Sequence[Sequence[Hashable]]] = None,
    ) -> DropResult:
        """Evaluate all share columns; success = any column stopped."""
        if len(columns) != len(thresholds):
            raise ValueError(
                f"got {len(columns)} columns but {len(thresholds)} thresholds"
            )
        if dead_by_column is not None and len(dead_by_column) != len(columns):
            raise ValueError("dead_by_column must align with columns")
        cut: List[int] = []
        for index, (column, threshold) in enumerate(
            zip(columns, thresholds), start=1
        ):
            dead = dead_by_column[index - 1] if dead_by_column is not None else None
            if self.evaluate_share_column(column, threshold, dead=dead):
                cut.append(index)
        return DropResult(
            succeeded=bool(cut),
            cut_positions=cut,
            surviving_routes=0 if cut else 1,
        )
