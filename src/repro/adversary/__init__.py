"""Adversary models (paper §II-B).

The threat model: a single adversary (or colluding group) controls a
fraction ``p`` of the DHT population — obtained through Sybil or Eclipse
attacks — and pursues one of two goals against a self-emerging key:

- **release-ahead** (:mod:`repro.adversary.release_ahead`): reconstruct the
  secret key before the release time by pooling everything malicious
  holders observe;
- **drop** (:mod:`repro.adversary.drop`): destroy the key so it can never
  be released, by having malicious holders refuse to forward.

:mod:`repro.adversary.population` marks the malicious node set exactly the
way the paper's experiments do (``10000 * p`` non-repeated random nodes);
:mod:`repro.adversary.knowledge` is the collusion pool where malicious
holders deposit captured onions, keys and shares.
"""

from repro.adversary.adaptive import AdaptiveAdversary, evaluate_adaptive_attack
from repro.adversary.drop import DropAttack
from repro.adversary.knowledge import CollusionPool, Observation
from repro.adversary.population import SybilPopulation
from repro.adversary.release_ahead import ReleaseAheadAttack

__all__ = [
    "SybilPopulation",
    "CollusionPool",
    "Observation",
    "ReleaseAheadAttack",
    "DropAttack",
    "AdaptiveAdversary",
    "evaluate_adaptive_attack",
]
