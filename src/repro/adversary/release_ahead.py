"""The release-ahead attack (paper §II-B.1).

Goal: extract the secret key from the DHT before the release time and use it
to decrypt the ciphertext waiting in the cloud.

For the multipath schemes the paper's success condition (the one behind
Eq. 1) is: *the adversary controls at least one holder of every column*,
because every column's layer key is replicated across that column's ``k``
holders and one captured copy per column suffices to strip the whole onion.
For the single-path illustration of Fig. 2 the condition is the stricter
*contiguous malicious suffix*; both evaluators are provided, and the
integration tests check the live protocol agrees with them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, List, Optional, Sequence

from repro.adversary.population import SybilPopulation


@dataclass(frozen=True)
class ReleaseAheadResult:
    """Outcome of a release-ahead evaluation against one key's structure."""

    succeeded: bool
    captured_columns: List[int] = field(default_factory=list)
    uncaptured_columns: List[int] = field(default_factory=list)
    earliest_release_period: Optional[int] = None

    @property
    def resilient(self) -> bool:
        return not self.succeeded


class ReleaseAheadAttack:
    """Static (no-churn) release-ahead evaluation against holder structures."""

    def __init__(self, population: SybilPopulation) -> None:
        self.population = population

    # -- multipath grids (node-disjoint and node-joint share this condition)

    def evaluate_grid(self, columns: Sequence[Sequence[Hashable]]) -> ReleaseAheadResult:
        """Evaluate against a ``k x l`` holder grid given as columns.

        ``columns[j]`` lists the holders replicating column ``j + 1``'s
        layer key.  Success requires a malicious holder in *every* column;
        the keys are pre-assigned at the start time, so a successful attack
        releases at period 1 (the moment the onion first touches a malicious
        first-column holder, per the Fig. 4 discussion).
        """
        if not columns:
            raise ValueError("grid must have at least one column")
        captured: List[int] = []
        uncaptured: List[int] = []
        for index, column in enumerate(columns, start=1):
            if not column:
                raise ValueError(f"column {index} has no holders")
            if any(self.population.is_malicious(holder) for holder in column):
                captured.append(index)
            else:
                uncaptured.append(index)
        succeeded = not uncaptured
        return ReleaseAheadResult(
            succeeded=succeeded,
            captured_columns=captured,
            uncaptured_columns=uncaptured,
            earliest_release_period=1 if succeeded else None,
        )

    # -- single path (Fig. 2 illustration) ----------------------------------

    def evaluate_single_path(self, path: Sequence[Hashable]) -> ReleaseAheadResult:
        """Evaluate the contiguous-suffix condition on one onion path.

        Per Fig. 2(b): the adversary must control a set of *successive*
        holders ending at the last one; any break in continuity stops the
        attack.  A malicious suffix of length ``s`` on a path of length
        ``l`` releases the key when the onion reaches the suffix, i.e. at
        period ``l - s + 1``.
        """
        if not path:
            raise ValueError("path must have at least one holder")
        length = len(path)
        suffix = 0
        for holder in reversed(path):
            if self.population.is_malicious(holder):
                suffix += 1
            else:
                break
        succeeded = suffix == length or suffix > 0
        # A suffix shorter than the whole path releases the key early only
        # relative to the *final* period; success per the paper means
        # release strictly before tr, which any non-empty suffix achieves
        # except the degenerate suffix of just the terminal holder releasing
        # at tr itself.  The terminal holder alone learns the key one
        # holding period early (it holds the decrypted key for the last th).
        captured = [length - offset for offset in range(suffix)]
        return ReleaseAheadResult(
            succeeded=suffix > 0,
            captured_columns=sorted(captured),
            uncaptured_columns=[i for i in range(1, length + 1) if i not in captured],
            earliest_release_period=(length - suffix + 1) if suffix else None,
        )

    # -- key-share lattices --------------------------------------------------

    def evaluate_share_column(
        self, holders: Sequence[Hashable], threshold: int
    ) -> bool:
        """Is one share column's key capturable (>= threshold malicious)?"""
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        malicious = sum(
            1 for holder in holders if self.population.is_malicious(holder)
        )
        return malicious >= threshold

    def evaluate_share_lattice(
        self,
        columns: Sequence[Sequence[Hashable]],
        thresholds: Sequence[int],
    ) -> ReleaseAheadResult:
        """Evaluate the key-share routing structure.

        ``columns[j]`` holds the ``n`` share carriers of column ``j + 1``
        and ``thresholds[j]`` the matching ``m``.  Success requires every
        column key to be recoverable from captured shares.
        """
        if len(columns) != len(thresholds):
            raise ValueError(
                f"got {len(columns)} columns but {len(thresholds)} thresholds"
            )
        captured: List[int] = []
        uncaptured: List[int] = []
        for index, (column, threshold) in enumerate(
            zip(columns, thresholds), start=1
        ):
            if self.evaluate_share_column(column, threshold):
                captured.append(index)
            else:
                uncaptured.append(index)
        succeeded = not uncaptured
        return ReleaseAheadResult(
            succeeded=succeeded,
            captured_columns=captured,
            uncaptured_columns=uncaptured,
            earliest_release_period=max(captured) if succeeded else None,
        )
