"""Extension: an adaptive (traffic-observing) adversary.

The paper's adversary corrupts a uniformly random ``p`` fraction of the
network up front (Sybil marking).  A stronger adversary *watches* — every
protocol delivery its nodes can observe reveals which honest nodes act as
holders — and then concentrates its remaining corruption budget on the
observed holder set (targeted Eclipse/compromise).

This module models the two-phase game:

1. **seed phase** — a fraction ``seed_rate`` of the network is corrupted
   uniformly (the classic Sybil marking);
2. **adaptive phase** — the adversary observes each holder independently
   with probability ``observation_rate`` (a proxy for how much protocol
   traffic its seeds can see), and spends ``budget`` extra corruptions on
   observed-but-honest holders.

The interesting question the sweep answers: how much *observability* does
the DHT have to leak before the schemes' resilience collapses, and does
pseudo-random holder selection (large anonymity set) actually protect the
structures?  Spoiler (see the tests): with 10,000 nodes and a small grid,
even full observation plus a 5x budget concentration leaves the key-share
scheme standing, because per-column thresholds force *broad* corruption,
not just deep corruption.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, List, Sequence

from repro.adversary.population import SybilPopulation
from repro.util.rng import RandomSource
from repro.util.validation import check_positive_int, check_probability


@dataclass(frozen=True)
class AdaptiveOutcome:
    """Result of the two-phase corruption game for one structure."""

    seeds_used: int
    targeted_corruptions: int
    observed_holders: int
    release_resisted: bool
    drop_resisted: bool


class AdaptiveAdversary:
    """A two-phase adversary with a targeted corruption budget."""

    def __init__(
        self,
        seed_rate: float,
        observation_rate: float,
        budget: int,
        rng: RandomSource,
    ) -> None:
        self.seed_rate = check_probability(seed_rate, "seed_rate")
        self.observation_rate = check_probability(
            observation_rate, "observation_rate"
        )
        self.budget = check_positive_int(budget, "budget", minimum=0)
        self._rng = rng

    def corrupt(
        self,
        population_ids: Sequence[Hashable],
        holders: Sequence[Hashable],
    ) -> SybilPopulation:
        """Run both phases and return the resulting malicious population."""
        sybil = SybilPopulation(self.seed_rate, self._rng.fork("seed-phase"))
        sybil.mark_population(list(population_ids))

        observe_rng = self._rng.fork("observe")
        observed = [
            holder
            for holder in holders
            if observe_rng.bernoulli(self.observation_rate)
        ]
        target_rng = self._rng.fork("target")
        candidates = [h for h in observed if not sybil.is_malicious(h)]
        target_rng.shuffle(candidates)
        sybil.force_malicious(candidates[: self.budget])
        self._last_observed = len(observed)
        self._last_targeted = min(self.budget, len(candidates))
        return sybil

    @property
    def last_observed(self) -> int:
        return getattr(self, "_last_observed", 0)

    @property
    def last_targeted(self) -> int:
        return getattr(self, "_last_targeted", 0)


def evaluate_adaptive_attack(
    scheme,
    population_ids: Sequence[Hashable],
    adversary: AdaptiveAdversary,
    rng: RandomSource,
) -> AdaptiveOutcome:
    """One trial: sample a structure, corrupt adaptively, evaluate attacks.

    ``scheme`` is any :class:`repro.core.schemes.base.Scheme`.  The
    adversary sees the holder list only through its observation filter —
    it never learns holders its nodes did not notice.
    """
    structure = scheme.sample_structure(list(population_ids), rng.fork("structure"))
    if hasattr(structure, "all_holders"):
        holders = structure.all_holders()
    else:
        holders = [structure]
    population = adversary.corrupt(population_ids, holders)
    outcome = scheme.evaluate_attacks(structure, population)
    return AdaptiveOutcome(
        seeds_used=population.malicious_count - adversary.last_targeted,
        targeted_corruptions=adversary.last_targeted,
        observed_holders=adversary.last_observed,
        release_resisted=outcome.release_resisted,
        drop_resisted=outcome.drop_resisted,
    )


def adaptive_resilience_sweep(
    scheme,
    population_size: int,
    seed_rate: float,
    observation_rates: Sequence[float],
    budget: int,
    trials: int = 300,
    seed: int = 4242,
) -> List[dict]:
    """Resilience vs observation rate, holding the corruption budget fixed."""
    population_ids = list(range(population_size))
    rows = []
    for observation_rate in observation_rates:
        root = RandomSource(seed, label=f"adaptive-{observation_rate}")
        release_hits = drop_hits = 0
        for index in range(trials):
            trial_rng = root.fork(f"t{index}")
            adversary = AdaptiveAdversary(
                seed_rate, observation_rate, budget, trial_rng.fork("adversary")
            )
            outcome = evaluate_adaptive_attack(
                scheme, population_ids, adversary, trial_rng
            )
            release_hits += outcome.release_resisted
            drop_hits += outcome.drop_resisted
        rows.append(
            {
                "observation_rate": observation_rate,
                "release_resilience": release_hits / trials,
                "drop_resilience": drop_hits / trials,
            }
        )
    return rows
