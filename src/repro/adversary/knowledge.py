"""The collusion pool: what the adversary has seen, and what it can derive.

Malicious holders deposit every package, layer key and share they handle.
The pool then answers the two questions the attacks need:

- can the secret key be reconstructed *now* (release-ahead succeeded)?
- at what (virtual) time did reconstruction first become possible?

The pool works on opaque byte payloads plus structured tags, so both the
end-to-end protocol simulation and the abstract Monte Carlo can use it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Set, Tuple

from repro.crypto.shamir import Share, combine_shares


@dataclass(frozen=True)
class Observation:
    """One captured artefact."""

    time: float
    holder: Hashable
    kind: str  # "onion", "layer_key", "share", "secret_key"
    column: Optional[int] = None
    payload: bytes = b""


class CollusionPool:
    """Pooled adversary knowledge across all malicious holders."""

    def __init__(self) -> None:
        self._observations: List[Observation] = []
        self._layer_keys: Dict[int, Tuple[float, bytes]] = {}
        # Shares bucketed by (column, row): the key-share scheme gives every
        # lattice row its own per-column key, so shares of different rows
        # must never be combined together.  Multipath deposits use row 0.
        self._shares: Dict[Tuple[int, int], Dict[int, Tuple[float, Share]]] = {}
        self._secret_key: Optional[Tuple[float, bytes]] = None
        self._onion_columns: Dict[int, float] = {}

    # -- deposits ----------------------------------------------------------

    def deposit(self, observation: Observation) -> None:
        """Record a captured artefact and index it by kind."""
        self._observations.append(observation)
        if observation.kind == "layer_key" and observation.column is not None:
            self._layer_keys.setdefault(
                observation.column, (observation.time, observation.payload)
            )
        elif observation.kind == "secret_key":
            if self._secret_key is None:
                self._secret_key = (observation.time, observation.payload)
        elif observation.kind == "onion" and observation.column is not None:
            self._onion_columns.setdefault(observation.column, observation.time)

    def deposit_share(
        self, time: float, holder: Hashable, column: int, share: Share, row: int = 0
    ) -> None:
        """Record a captured Shamir share of a (column, row) key."""
        self._observations.append(
            Observation(
                time=time,
                holder=holder,
                kind="share",
                column=column,
                payload=share.payload,
            )
        )
        self._shares.setdefault((column, row), {}).setdefault(
            share.index, (time, share)
        )

    # -- derivations -------------------------------------------------------

    def known_layer_key(self, column: int) -> Optional[bytes]:
        """The column's layer key if captured directly or derivable from shares."""
        if column in self._layer_keys:
            return self._layer_keys[column][1]
        derived = self._derive_key_from_shares(column)
        if derived is not None:
            return derived[1]
        return None

    def layer_key_capture_time(self, column: int) -> Optional[float]:
        """When the column key first became known to the adversary."""
        direct = self._layer_keys.get(column)
        derived = self._derive_key_from_shares(column)
        times = [entry[0] for entry in (direct, derived) if entry is not None]
        return min(times) if times else None

    def _derive_key_from_shares(self, column: int) -> Optional[Tuple[float, bytes]]:
        """Earliest derivable key for the column across all row buckets."""
        best: Optional[Tuple[float, bytes]] = None
        for (bucket_column, _row), entries in self._shares.items():
            if bucket_column != column or not entries:
                continue
            threshold = next(iter(entries.values()))[1].threshold
            if len(entries) < threshold:
                continue
            # The key became derivable when the m-th share (by capture
            # time) arrived; combine using the m earliest.
            ordered = sorted(entries.values(), key=lambda pair: pair[0])
            usable = [share for _, share in ordered[:threshold]]
            capture_time = ordered[threshold - 1][0]
            derived = (capture_time, combine_shares(usable))
            if best is None or derived[0] < best[0]:
                best = derived
        return best

    def secret_key(self) -> Optional[bytes]:
        """The end secret key, if any malicious terminal holder saw it."""
        return self._secret_key[1] if self._secret_key else None

    def captured_columns(self) -> Set[int]:
        """Columns whose layer key the adversary knows (directly or via shares)."""
        captured = set(self._layer_keys)
        for (column, _row) in self._shares:
            if self.known_layer_key(column) is not None:
                captured.add(column)
        return captured

    # -- accounting --------------------------------------------------------

    @property
    def observation_count(self) -> int:
        return len(self._observations)

    def observations(self, kind: Optional[str] = None) -> List[Observation]:
        if kind is None:
            return list(self._observations)
        return [obs for obs in self._observations if obs.kind == kind]

    def earliest_full_compromise_time(self, total_columns: int) -> Optional[float]:
        """Earliest time all ``total_columns`` layer keys were known.

        This is the release-ahead success instant for onion structures: the
        adversary can strip every layer once it has every column key (it has
        seen the outer onion at column 1 by then in any successful attack,
        because capturing column 1's key requires a malicious first-column
        holder, who also saw the package).
        """
        times = []
        for column in range(1, total_columns + 1):
            capture = self.layer_key_capture_time(column)
            if capture is None:
                if self._secret_key is not None:
                    return self._secret_key[0]
                return None
            times.append(capture)
        full = max(times)
        if self._secret_key is not None:
            return min(full, self._secret_key[0])
        return full
