#!/usr/bin/env python
"""The paper's online-examination scenario, with a cheating student.

The examination questions are uploaded encrypted before the exam window;
the decryption key self-emerges exactly when the exam starts.  A coalition
of cheaters controls a fraction ``p`` of the DHT (Sybil attack) and runs
the release-ahead attack, pooling everything its nodes observe.

The script first *plans* the structure for a target resilience with the
closed-form analysis (paper Eqs. 1 and 3), then runs the live protocol
twice — once against a weak coalition, once against an overwhelming one —
and shows when (and whether) the cheaters could reconstruct the questions.

Run:  python examples/online_exam.py
"""

from repro.adversary import SybilPopulation
from repro.cloud import CloudStore
from repro.core import DataReceiver, DataSender, ReleaseTimeline, plan_configuration
from repro.core.protocol import (
    ATTACK_RELEASE_AHEAD,
    ProtocolContext,
    attempt_early_release,
    install_holders,
)
from repro.dht import build_network
from repro.util import RandomSource

EXAM_QUESTIONS = (
    b"Q1: Prove Lemma 1.  Q2: Derive Eq. 3.  Q3: Break the centralized scheme."
)
NETWORK_SIZE = 300
EXAM_START = 7 * 24 * 3600.0  # exam begins one week after upload


def plan(p: float) -> None:
    configuration = plan_configuration("joint", p, NETWORK_SIZE, target=0.999)
    print(
        f"  planner at p={p:.2f}: k={configuration.replication}, "
        f"l={configuration.path_length}, cost={configuration.cost} nodes, "
        f"Rr={configuration.release_resilience:.4f}, "
        f"Rd={configuration.drop_resilience:.4f} "
        f"({'meets' if configuration.meets_target else 'best-effort'})"
    )


def run_exam(malicious_rate: float, seed: int = 101) -> None:
    print(f"\n--- exam run with a coalition controlling p = {malicious_rate:.0%} ---")
    overlay = build_network(NETWORK_SIZE, seed=seed)
    cheaters = SybilPopulation(malicious_rate, RandomSource(seed + 1, "sybil"))
    cheaters.mark_population(overlay.node_ids)
    context = ProtocolContext(
        network=overlay.network,
        population=cheaters,
        attack_mode=ATTACK_RELEASE_AHEAD,
    )
    install_holders(overlay, context)

    examiner = DataSender(
        overlay.nodes[overlay.node_ids[0]],
        CloudStore(overlay.loop.clock),
        RandomSource(seed + 2, "examiner"),
    )
    student_body = DataReceiver(overlay.nodes[overlay.node_ids[1]])
    cheaters.force_honest([examiner.node.node_id, student_body.node_id])

    configuration = plan_configuration("joint", malicious_rate, NETWORK_SIZE)
    timeline = ReleaseTimeline(0.0, EXAM_START, configuration.path_length)
    result = examiner.send_multipath(
        EXAM_QUESTIONS,
        timeline,
        student_body.node_id,
        replication=configuration.replication,
        joint=True,
    )
    print(
        f"  questions sealed: k={configuration.replication}, "
        f"l={configuration.path_length}, predicted Rr="
        f"{configuration.release_resilience:.4f}"
    )

    # Run halfway to the exam and let the coalition try to reconstruct.
    overlay.loop.run(until=EXAM_START / 2)
    leaked = attempt_early_release(context.pool, timeline.path_length)
    if leaked is not None:
        print(
            f"  CHEATERS WIN: questions reconstructed at mid-week "
            f"({context.pool.observation_count} artefacts pooled)"
        )
    else:
        print(
            f"  cheaters pooled {context.pool.observation_count} artefacts "
            f"but cannot reconstruct the key"
        )

    # Run to the exam start: the questions must emerge for everyone.
    overlay.loop.run(until=EXAM_START + 60.0)
    if student_body.has_key(result.key_id):
        questions = student_body.decrypt_from_cloud(
            examiner.cloud, result.blob.blob_id, result.key_id
        )
        print(f"  exam opened on time at t={student_body.release_time_of(result.key_id):.0f}s: "
              f"{questions[:40]!r}...")
    else:
        print("  exam DID NOT open (key dropped)")


def main() -> None:
    print("planning table (node-joint scheme, 300-node DHT, target R=0.999):")
    for p in (0.05, 0.15, 0.30, 0.45):
        plan(p)

    run_exam(0.10)  # a modest coalition: attack should fail
    run_exam(0.65)  # an overwhelming coalition: attack likely succeeds


if __name__ == "__main__":
    main()
