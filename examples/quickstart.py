#!/usr/bin/env python
"""Quickstart: send a message to the future over a simulated DHT.

Alice encrypts a message, parks the ciphertext in the cloud, and routes the
decryption key through a node-joint multipath structure in a 200-node
Kademlia overlay.  Bob can fetch the ciphertext at any time but the key
only emerges at the release time.

Run:  python examples/quickstart.py
"""

from repro.cloud import CloudStore
from repro.core import DataReceiver, DataSender, ReleaseTimeline
from repro.core.protocol import ProtocolContext, install_holders
from repro.dht import build_network
from repro.sim.trace import TraceRecorder
from repro.util import RandomSource


def main() -> None:
    # 1. Stand up a 200-node overlay on a deterministic event loop.
    trace = TraceRecorder()
    overlay = build_network(200, seed=7, trace=trace)
    context = ProtocolContext(network=overlay.network, trace=trace)
    install_holders(overlay, context)

    # 2. Alice and Bob own two of the overlay's nodes.
    alice = DataSender(
        overlay.nodes[overlay.node_ids[0]],
        CloudStore(overlay.loop.clock),
        RandomSource(42, "alice"),
    )
    bob = DataReceiver(overlay.nodes[overlay.node_ids[1]])

    # 3. Release in one simulated hour, routed over 4 columns x 3 paths.
    timeline = ReleaseTimeline(start_time=0.0, release_time=3600.0, path_length=4)
    result = alice.send_multipath(
        b"attack at dawn",
        timeline,
        bob.node_id,
        replication=3,
        joint=True,
    )
    print(f"sent: key {result.secret_key.fingerprint} over a "
          f"{result.structure.replication}x{result.structure.path_length} grid, "
          f"cloud blob {result.blob.blob_id}")
    print(f"holding period: {timeline.holding_period:.0f}s per column\n")

    # 4. Before the release time the key simply does not exist for Bob.
    overlay.loop.run(until=3599.0)
    print(f"t={overlay.loop.clock.now:7.1f}s  Bob has key: {bob.has_key(result.key_id)}")

    # 5. At tr the terminal holders hand the key over; Bob decrypts.
    overlay.loop.run(until=3700.0)
    print(f"t={overlay.loop.clock.now:7.1f}s  Bob has key: {bob.has_key(result.key_id)}")
    message = bob.decrypt_from_cloud(
        alice.cloud, result.blob.blob_id, result.key_id
    )
    print(f"decrypted message: {message!r}")
    print(f"key emerged at t={bob.release_time_of(result.key_id):.2f}s "
          f"(release time was {timeline.release_time:.0f}s)\n")

    # 6. A peek at the protocol timeline.
    holder_events = trace.filter("holder")
    print("onion progress (first 8 holder events):")
    for event in holder_events[:8]:
        print(f"  {event}")


if __name__ == "__main__":
    main()
