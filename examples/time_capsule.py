#!/usr/bin/env python
"""A long-horizon time capsule: why key-share routing exists.

The sender wants data hidden for *five node lifetimes* (α = 5 — the paper's
harshest Fig. 7 panel).  This script contrasts the schemes analytically at
that horizon and then demonstrates the failure mode concretely: with keys
pre-assigned to concrete holders (multipath), churn repairs keep handing
the column keys to new nodes, and the release-ahead exposure grows; the
key-share scheme stores nothing across periods so churn barely moves it.

Run:  python examples/time_capsule.py
"""

import numpy as np

from repro.core import plan_configuration
from repro.core.schemes.keyshare import plan_share_scheme
from repro.experiments.churn_model import (
    simulate_centralized,
    simulate_key_share,
    simulate_multipath,
)
from repro.experiments.reporting import format_series_table

ALPHA = 5.0
NETWORK = 10000
TRIALS = 2000
P_SWEEP = (0.0, 0.05, 0.10, 0.15, 0.20, 0.25, 0.30)


def main() -> None:
    rows = {"central": [], "disjoint": [], "joint": [], "share": []}
    for p in P_SWEEP:
        planning_rate = max(p, 0.05)
        rng = np.random.default_rng(17)

        rows["central"].append(
            simulate_centralized(p, ALPHA, TRIALS, rng).worst
        )
        for scheme in ("disjoint", "joint"):
            configuration = plan_configuration(scheme, planning_rate, NETWORK)
            outcome = simulate_multipath(
                p,
                ALPHA,
                configuration.replication,
                configuration.path_length,
                TRIALS,
                rng,
                joint=(scheme == "joint"),
            )
            rows[scheme].append(outcome.worst)
        plan = plan_share_scheme(planning_rate, NETWORK, ALPHA, 1.0)
        rows["share"].append(
            simulate_key_share(plan, ALPHA, TRIALS, rng, malicious_rate=p).worst
        )

    print(
        format_series_table(
            f"Time capsule horizon alpha = {ALPHA:g} (T = 5 node lifetimes), "
            f"N = {NETWORK}",
            "p",
            list(P_SWEEP),
            rows,
        )
    )
    print()
    print("reading: the centralized holder is almost surely dead before the")
    print("release (R ~ e^-5); the multipath schemes leak their stored keys")
    print("through churn repairs; key-share routing stores nothing between")
    print("holding periods, so five lifetimes of churn barely dent it.")

    # The paper's concluding claim, checked right here:
    share_at_p25 = rows["share"][P_SWEEP.index(0.25)]
    assert share_at_p25 > 0.9, "share scheme should hold R > 0.9 at p = 0.25"
    print(f"\npaper claim holds: share scheme R = {share_at_p25:.3f} at p = 0.25, "
          f"alpha = 5 (threshold: > 0.9)")


if __name__ == "__main__":
    main()
