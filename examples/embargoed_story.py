#!/usr/bin/env python
"""An embargoed news story: biasing the Rr/Rd trade-off.

A newsroom embargoes a story until market close.  Their threat model is
asymmetric: an early leak (release-ahead) is catastrophic, while a dropped
key merely means re-publishing through normal channels.  The §III-C
trade-off lets them *bias* the structure: walk the Pareto frontier of
(Rr, Rd) configurations and pick the release-heavy end — then verify the
choice with the live protocol.

Run:  python examples/embargoed_story.py
"""

from repro.adversary import SybilPopulation
from repro.cloud import CloudStore
from repro.core import DataReceiver, DataSender, ReleaseTimeline
from repro.core.protocol import (
    ATTACK_RELEASE_AHEAD,
    ProtocolContext,
    attempt_early_release,
    install_holders,
)
from repro.core.tradeoff import biased_configuration, pareto_frontier
from repro.dht import build_network
from repro.util import RandomSource

MALICIOUS_RATE = 0.30
BUDGET = 400
STORY = b"EMBARGO 16:00 -- megacorp to restate earnings"


def main() -> None:
    # 1. Walk the frontier and show the asymmetric choices.
    frontier = pareto_frontier("joint", MALICIOUS_RATE, BUDGET)
    print(f"Pareto frontier at p={MALICIOUS_RATE}, budget={BUDGET}: "
          f"{len(frontier)} configurations")
    for weight, label in [(1.0, "embargo bias (max Rr)"),
                          (0.5, "balanced"),
                          (0.0, "escrow bias (max Rd)")]:
        point = biased_configuration(
            "joint", MALICIOUS_RATE, BUDGET, release_weight=weight
        )
        print(f"  {label:22s}: k={point.replication:2d} l={point.path_length:3d} "
              f"cost={point.cost:4d} Rr={point.release_resilience:.4f} "
              f"Rd={point.drop_resilience:.4f}")

    choice = biased_configuration(
        "joint", MALICIOUS_RATE, BUDGET, release_weight=0.9
    )
    print(f"\nnewsroom picks k={choice.replication}, l={choice.path_length} "
          f"(Rr={choice.release_resilience:.4f}, Rd={choice.drop_resilience:.4f})")

    # 2. Live run against a colluding 30% of the network.
    overlay = build_network(600, seed=99)
    colluders = SybilPopulation(MALICIOUS_RATE, RandomSource(100, "sybil"))
    colluders.mark_population(overlay.node_ids)
    context = ProtocolContext(
        network=overlay.network,
        population=colluders,
        attack_mode=ATTACK_RELEASE_AHEAD,
    )
    install_holders(overlay, context)
    newsroom = DataSender(
        overlay.nodes[overlay.node_ids[0]],
        CloudStore(overlay.loop.clock),
        RandomSource(101, "newsroom"),
        name="newsroom",
    )
    wire_service = DataReceiver(overlay.nodes[overlay.node_ids[1]], name="wire")
    colluders.force_honest([newsroom.node.node_id, wire_service.node_id])

    market_close = 6.5 * 3600.0
    timeline = ReleaseTimeline(0.0, market_close, choice.path_length)
    result = newsroom.send_multipath(
        STORY, timeline, wire_service.node_id,
        replication=choice.replication, joint=True,
    )

    overlay.loop.run(until=market_close / 2)
    leak = attempt_early_release(context.pool, timeline.path_length)
    print(f"\nmid-embargo: colluders pooled "
          f"{context.pool.observation_count} artefacts -> "
          f"{'STORY LEAKED' if leak else 'no leak'}")

    overlay.loop.run(until=market_close + 120.0)
    if wire_service.has_key(result.key_id):
        text = wire_service.decrypt_from_cloud(
            newsroom.cloud, result.blob.blob_id, result.key_id
        )
        print(f"market close: story published on schedule: {text[:30]!r}...")
    else:
        print("market close: key dropped — newsroom republishes manually "
              "(the accepted risk of the embargo bias)")


if __name__ == "__main__":
    main()
