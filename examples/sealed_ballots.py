#!/usr/bin/env python
"""Sealed electronic ballots: many keys, one release time, live churn.

Each voter encrypts a ballot and seals its key with the *key-share routing*
scheme (paper §III-D): no holder stores a layer key for longer than one
holding period, and hop targets are re-resolved through the DHT, so the
tally opens on time even while nodes die and fresh nodes replace them.

The election authority (receiver) can only tally after the polls close —
before that, the keys simply do not exist anywhere reconstructable.

Run:  python examples/sealed_ballots.py
"""

from repro.churn import ChurnProcess, ExponentialLifetime
from repro.cloud import CloudStore
from repro.core import DataReceiver, DataSender, ReleaseTimeline
from repro.core.protocol import ProtocolContext, install_holders
from repro.dht import build_network
from repro.util import RandomSource

POLL_CLOSE = 24 * 3600.0  # polls close after one simulated day
VOTES = ["yes", "no", "yes", "yes", "abstain", "no", "yes"]
MEAN_NODE_LIFETIME = 4 * 24 * 3600.0  # alpha = T / t_life = 0.25


def main() -> None:
    overlay = build_network(250, seed=2024)
    context = ProtocolContext(network=overlay.network, resolve_targets=True)
    install_holders(overlay, context)
    cloud = CloudStore(overlay.loop.clock)

    authority = DataReceiver(overlay.nodes[overlay.node_ids[0]], name="authority")

    # Churn runs for the whole election: nodes die, replacements join.
    churn = ChurnProcess(
        overlay.network,
        ExponentialLifetime(MEAN_NODE_LIFETIME),
        RandomSource(5, "churn"),
    )
    churn.start()

    # Every voter seals a ballot with the key-share scheme.
    timeline = ReleaseTimeline(0.0, POLL_CLOSE, 4)
    ballots = []
    for index, vote in enumerate(VOTES):
        voter = DataSender(
            overlay.nodes[overlay.node_ids[index + 1]],
            cloud,
            RandomSource(100 + index, f"voter-{index}"),
            name=f"voter-{index}",
        )
        result = voter.send_key_share(
            f"ballot: {vote}".encode(),
            timeline,
            authority.node_id,
            share_rows=6,
            secret_rows=3,
            thresholds=[1, 3, 3, 3],
        )
        ballots.append(result)
    print(f"{len(ballots)} ballots sealed; polls close at t={POLL_CLOSE:.0f}s "
          f"(m=3 of n=6 shares per column, 4 columns)")

    # Mid-election: nothing is tallied, churn is happening.
    overlay.loop.run(until=POLL_CLOSE / 2)
    opened = sum(authority.has_key(ballot.key_id) for ballot in ballots)
    print(f"t={overlay.loop.clock.now:9.0f}s  ballots opened: {opened}/{len(ballots)} "
          f"(deaths so far: {churn.deaths})")
    assert opened == 0

    # Polls close: keys emerge, the authority tallies.
    overlay.loop.run(until=POLL_CLOSE + 300.0)
    tally = {}
    lost = 0
    for ballot in ballots:
        if not authority.has_key(ballot.key_id):
            lost += 1
            continue
        plaintext = authority.decrypt_from_cloud(
            cloud, ballot.blob.blob_id, ballot.key_id
        )
        vote = plaintext.decode().split(": ")[1]
        tally[vote] = tally.get(vote, 0) + 1

    print(f"t={overlay.loop.clock.now:9.0f}s  polls closed "
          f"(total deaths: {churn.deaths}, joins: {churn.joins})")
    print(f"tally: {tally}" + (f"  ({lost} ballots lost to churn)" if lost else ""))


if __name__ == "__main__":
    main()
